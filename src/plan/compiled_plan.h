#ifndef SES_PLAN_COMPILED_PLAN_H_
#define SES_PLAN_COMPILED_PLAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/automaton.h"
#include "core/filter.h"
#include "core/matcher.h"

namespace ses::plan {

/// Compile-time choices, fixed when the plan is built.
struct PlanOptions {
  /// Enables the §4.5 event pre-filter. The filter is built (and its
  /// constant-condition scan run) once per plan; engines share it across
  /// partitions and shards. When disabled, no filter is built and engines
  /// process every event.
  bool enable_prefilter = true;
  /// Enables shared per-event evaluation of constant transition conditions
  /// in every executor created from this plan (see
  /// ExecutorOptions::shared_constant_evaluation).
  bool shared_constant_evaluation = false;
  /// Partition attribute for partition-pure engines. Negative means
  /// auto-detect with FindPartitionAttribute; detection failure is not an
  /// error — the plan simply reports has_partition_attribute() == false and
  /// partitioned engines refuse to build from it. A non-negative value is
  /// validated against FindPartitionAttribute's result and rejected if the
  /// pattern's equality graph is not complete on it.
  int partition_attribute = -1;
};

/// The immutable artifact of pattern compilation, shared by every engine
/// (see engine/engine.h) evaluating the same pattern: the §4 powerset
/// automaton, the §4.5 event pre-filter, and the detected partition
/// attribute. The exponential automaton construction and the
/// FindPartitionAttribute equality-graph analysis run exactly once per
/// plan, no matter how many engines, partitions, or shards execute it —
/// compile once, run anywhere.
///
/// A CompiledPlan is deeply immutable after CompilePlan returns, so one
/// shared_ptr<const CompiledPlan> may be handed to any number of engines on
/// any number of threads concurrently.
class CompiledPlan {
 public:
  const Pattern& pattern() const { return automaton_->pattern(); }
  const SesAutomaton& automaton() const { return *automaton_; }
  /// The shared automaton handle, for engines that hold their own
  /// reference (per-partition matchers outliving the plan lookup).
  const std::shared_ptr<const SesAutomaton>& shared_automaton() const {
    return automaton_;
  }
  /// Null when options().enable_prefilter is false. May be non-null but
  /// inactive (filter->active() == false) when the pattern has a variable
  /// without constant conditions — engines then pass every event through.
  const std::shared_ptr<const EventPreFilter>& shared_prefilter() const {
    return prefilter_;
  }
  /// The batch twin of shared_prefilter(): same §4.5 conditions,
  /// deduplicated and evaluated per column into a pass-bitmap
  /// (core/filter.h). Null exactly when shared_prefilter() is null;
  /// inactive exactly when it is inactive. Engines use it on the columnar
  /// ingest path (engine::Engine::PushColumnar) and fall back to the
  /// scalar filter row-wise.
  const std::shared_ptr<const VectorizedPreFilter>& shared_vector_prefilter()
      const {
    return vector_prefilter_;
  }

  /// True when the pattern admits partition-pure execution (a complete
  /// equality graph on partition_attribute(); see core/partitioned.h).
  bool has_partition_attribute() const { return partition_attribute_ >= 0; }
  /// Schema index of the partition attribute; -1 when none qualifies.
  int partition_attribute() const { return partition_attribute_; }

  Duration window() const { return automaton_->window(); }
  const PlanOptions& options() const { return options_; }

  /// The plan's event-type alphabet on `attribute`: the set of constants C
  /// appearing in equality conditions `v.A = C` on that attribute, provided
  /// EVERY event variable of the pattern carries at least one such
  /// condition. Under that premise an event whose A-value is outside the
  /// alphabet cannot bind any variable of the pattern, so a multi-pattern
  /// evaluator may skip this plan for it without changing the plan's match
  /// set (docs/SEMANTICS.md §10) — the seam the catalog layer's inverted
  /// type index (src/catalog/) is built on.
  ///
  /// Returns nullopt — "this plan is interested in every event" — when some
  /// variable lacks an equality condition on `attribute`, when `attribute`
  /// is out of range, or when the attribute is DOUBLE-typed (floating-point
  /// equality is not a routing key). The values are deduplicated and
  /// ordered (Compare), so equal alphabets compare equal. Computed on
  /// demand from the pattern; call at registration time, not per event.
  std::optional<std::vector<Value>> EqualityAlphabet(int attribute) const;

  /// The per-evaluator options every engine built from this plan must
  /// forward to its Matchers, derived from the plan options.
  MatcherOptions matcher_options() const {
    MatcherOptions options;
    options.enable_prefilter = options_.enable_prefilter;
    options.shared_constant_evaluation = options_.shared_constant_evaluation;
    return options;
  }

 private:
  friend Result<std::shared_ptr<const CompiledPlan>> CompilePlan(
      const Pattern& pattern, PlanOptions options);

  CompiledPlan(std::shared_ptr<const SesAutomaton> automaton,
               std::shared_ptr<const EventPreFilter> prefilter,
               std::shared_ptr<const VectorizedPreFilter> vector_prefilter,
               int partition_attribute, PlanOptions options)
      : automaton_(std::move(automaton)),
        prefilter_(std::move(prefilter)),
        vector_prefilter_(std::move(vector_prefilter)),
        partition_attribute_(partition_attribute),
        options_(options) {}

  std::shared_ptr<const SesAutomaton> automaton_;
  std::shared_ptr<const EventPreFilter> prefilter_;
  std::shared_ptr<const VectorizedPreFilter> vector_prefilter_;
  int partition_attribute_;
  PlanOptions options_;
};

/// Compiles `pattern` once into a shareable plan: runs the powerset
/// construction, builds the pre-filter (when enabled), and detects or
/// validates the partition attribute. Fails only on an explicitly requested
/// partition attribute that does not carry a complete equality graph (or is
/// out of range / of DOUBLE type); an undetectable attribute under
/// auto-detection just yields a plan without one.
Result<std::shared_ptr<const CompiledPlan>> CompilePlan(
    const Pattern& pattern, PlanOptions options = {});

}  // namespace ses::plan

#endif  // SES_PLAN_COMPILED_PLAN_H_
