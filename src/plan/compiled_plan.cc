#include "plan/compiled_plan.h"

#include <utility>

#include "common/strings.h"
#include "core/partitioned.h"

namespace ses::plan {

Result<std::shared_ptr<const CompiledPlan>> CompilePlan(const Pattern& pattern,
                                                        PlanOptions options) {
  int attribute = options.partition_attribute;
  if (attribute >= 0) {
    if (attribute >= pattern.schema().num_attributes()) {
      return Status::InvalidArgument(
          "partition attribute index out of range");
    }
    if (!IsPartitionAttribute(pattern, attribute)) {
      return Status::InvalidArgument(strings::Format(
          "attribute '%s' does not carry a complete equality graph over all "
          "event variables; partitioned execution would not be equivalent",
          pattern.schema().attribute(attribute).name.c_str()));
    }
  } else {
    // Auto-detection: a pattern without a qualifying attribute still
    // compiles — it just cannot feed partition-pure engines.
    Result<int> found = FindPartitionAttribute(pattern);
    attribute = found.ok() ? *found : -1;
  }

  std::shared_ptr<const SesAutomaton> automaton = CompileAutomaton(pattern);
  std::shared_ptr<const EventPreFilter> prefilter;
  if (options.enable_prefilter) {
    // Built against the automaton's own pattern copy, so the filter's
    // condition references stay valid for the plan's whole lifetime.
    prefilter =
        std::make_shared<const EventPreFilter>(automaton->pattern());
  }
  return std::shared_ptr<const CompiledPlan>(new CompiledPlan(
      std::move(automaton), std::move(prefilter), attribute, options));
}

}  // namespace ses::plan
