#include "plan/compiled_plan.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/partitioned.h"

namespace ses::plan {

std::optional<std::vector<Value>> CompiledPlan::EqualityAlphabet(
    int attribute) const {
  const Pattern& pattern = automaton_->pattern();
  if (attribute < 0 || attribute >= pattern.schema().num_attributes()) {
    return std::nullopt;
  }
  if (pattern.schema().attribute(attribute).type == ValueType::kDouble) {
    return std::nullopt;
  }
  std::vector<bool> covered(pattern.num_variables(), false);
  std::vector<Value> alphabet;
  for (const Condition& condition : pattern.conditions()) {
    if (!condition.is_constant_condition()) continue;
    const AttributeRef& lhs = condition.lhs();
    if (lhs.is_timestamp() || lhs.attribute != attribute) continue;
    if (condition.op() != ComparisonOp::kEq) continue;
    covered[lhs.variable] = true;
    alphabet.push_back(condition.constant());
  }
  if (!std::all_of(covered.begin(), covered.end(),
                   [](bool c) { return c; })) {
    return std::nullopt;
  }
  // Values on one non-DOUBLE attribute share its declared type (pattern
  // validation), so Compare is total here.
  std::sort(alphabet.begin(), alphabet.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                 alphabet.end());
  return alphabet;
}

Result<std::shared_ptr<const CompiledPlan>> CompilePlan(const Pattern& pattern,
                                                        PlanOptions options) {
  int attribute = options.partition_attribute;
  if (attribute >= 0) {
    if (attribute >= pattern.schema().num_attributes()) {
      return Status::InvalidArgument(
          "partition attribute index out of range");
    }
    if (!IsPartitionAttribute(pattern, attribute)) {
      return Status::InvalidArgument(strings::Format(
          "attribute '%s' does not carry a complete equality graph over all "
          "event variables; partitioned execution would not be equivalent",
          pattern.schema().attribute(attribute).name.c_str()));
    }
  } else {
    // Auto-detection: a pattern without a qualifying attribute still
    // compiles — it just cannot feed partition-pure engines.
    Result<int> found = FindPartitionAttribute(pattern);
    attribute = found.ok() ? *found : -1;
  }

  std::shared_ptr<const SesAutomaton> automaton = CompileAutomaton(pattern);
  std::shared_ptr<const EventPreFilter> prefilter;
  std::shared_ptr<const VectorizedPreFilter> vector_prefilter;
  if (options.enable_prefilter) {
    // Built against the automaton's own pattern copy, so the filter's
    // condition references stay valid for the plan's whole lifetime.
    prefilter =
        std::make_shared<const EventPreFilter>(automaton->pattern());
    vector_prefilter =
        std::make_shared<const VectorizedPreFilter>(automaton->pattern());
  }
  return std::shared_ptr<const CompiledPlan>(new CompiledPlan(
      std::move(automaton), std::move(prefilter), std::move(vector_prefilter),
      attribute, options));
}

}  // namespace ses::plan
