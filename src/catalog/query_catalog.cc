#include "catalog/query_catalog.h"

#include <algorithm>
#include <utility>

namespace ses::catalog {

namespace {

/// Lower bound by id over the sorted entry list.
std::vector<CatalogEntry>::iterator FindEntry(
    std::vector<CatalogEntry>& entries, std::string_view id) {
  return std::lower_bound(
      entries.begin(), entries.end(), id,
      [](const CatalogEntry& entry, std::string_view key) {
        return entry.id < key;
      });
}

}  // namespace

Status QueryCatalog::Add(std::string id,
                         std::shared_ptr<const plan::CompiledPlan> plan) {
  if (id.empty()) {
    return Status::InvalidArgument("catalog plan id must be non-empty");
  }
  if (plan == nullptr) {
    return Status::InvalidArgument("catalog plan must be non-null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindEntry(entries_, id);
  if (it != entries_.end() && it->id == id) {
    return Status::AlreadyExists("catalog plan '" + id +
                                 "' is already registered (Remove it first "
                                 "to replace it)");
  }
  if (!entries_.empty() &&
      plan->pattern().schema() != entries_.front().plan->pattern().schema()) {
    return Status::InvalidArgument(
        "catalog plan '" + id + "' targets schema " +
        plan->pattern().schema().ToString() +
        " but this catalog serves " +
        entries_.front().plan->pattern().schema().ToString());
  }
  entries_.insert(it, CatalogEntry{std::move(id), std::move(plan)});
  ++generation_;
  return Status::OK();
}

Status QueryCatalog::Remove(std::string_view id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindEntry(entries_, id);
  if (it == entries_.end() || it->id != id) {
    return Status::NotFound("catalog plan '" + std::string(id) +
                            "' is not registered");
  }
  entries_.erase(it);
  ++generation_;
  return Status::OK();
}

bool QueryCatalog::Contains(std::string_view id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const CatalogEntry& entry, std::string_view key) {
        return entry.id < key;
      });
  return it != entries_.end() && it->id == id;
}

size_t QueryCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t QueryCatalog::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::shared_ptr<const CatalogSnapshot> QueryCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::shared_ptr<const CatalogSnapshot>(
      new CatalogSnapshot(generation_, entries_));
}

}  // namespace ses::catalog
