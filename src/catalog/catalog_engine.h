#ifndef SES_CATALOG_CATALOG_ENGINE_H_
#define SES_CATALOG_CATALOG_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/query_catalog.h"
#include "catalog/shared_index.h"
#include "common/result.h"
#include "engine/engine.h"

namespace ses::catalog {

/// Streaming consumer of demultiplexed matches: which registered plan
/// matched, and the match itself. Runs on the thread driving the catalog
/// engine; must not re-enter it. The id reference is valid only for the
/// duration of the call.
using CatalogMatchSink = std::function<void(std::string_view plan_id,
                                            Match&&)>;

/// Runtime knobs of a catalog engine, fixed at creation.
struct CatalogOptions {
  /// Required; receives every match tagged with the plan that produced it.
  CatalogMatchSink sink;
  /// Registry name of the per-plan evaluator (engine/registry.h). Every
  /// registered plan runs under the same engine kind; partition-pure
  /// engines fail a Push-time refresh if a registered plan is not
  /// partitionable.
  std::string engine = "serial";
  /// Template for every per-plan engine (shards, lateness bound, ...).
  /// The sink field is ignored — the catalog installs its own demux sink —
  /// and so are the periodic-checkpoint fields: checkpoint the catalog as
  /// a whole with CatalogEngine::Checkpoint instead of per plan.
  engine::EngineOptions engine_options;
  /// Shared-work toggles; see SharedIndexOptions. Both on by default, and
  /// neither changes any plan's match set (docs/SEMANTICS.md §10) — turn
  /// them off only to measure their effect (bench/catalog_scale).
  bool shared_type_index = true;
  bool shared_prefilter = true;
  /// Name of the routing attribute for the type index; empty = auto-detect
  /// the attribute most plans carry a complete equality alphabet on. A
  /// named attribute must exist in the stream schema and must not be
  /// DOUBLE-typed.
  std::string type_attribute;
};

/// Per-plan statistics snapshot, one row per registered plan (sorted by
/// id, the evaluation order).
struct PlanStats {
  std::string id;
  /// Matches delivered for this plan so far.
  int64_t matches = 0;
  /// Events this plan's engine actually received.
  int64_t events_considered = 0;
  /// Events routed away by the type index before any per-plan work: the
  /// event's type value was outside the plan's alphabet. Counted against
  /// the events pushed while the plan was registered.
  int64_t events_skipped_by_index = 0;
  /// Events the shared pre-filter bitmap rejected for this plan (its
  /// engine never saw them; the engine's own §4.5 filter would have
  /// dropped them after per-plan re-evaluation).
  int64_t events_skipped_by_prefilter = 0;
  /// The inner engine's full counter snapshot.
  engine::EngineStats engine;
};

/// Catalog-wide statistics snapshot.
struct CatalogStats {
  /// Events offered to the catalog (before any routing).
  int64_t events_pushed = 0;
  int64_t num_plans = 0;
  /// Catalog generation the engine is currently serving.
  int64_t generation = 0;
  /// How many times the engine refreshed onto a new snapshot.
  int64_t snapshot_refreshes = 0;
  /// Resolved schema index of the routing attribute; -1 = index inactive.
  int type_attribute = -1;
  /// Shared pre-filter table: distinct conditions vs the per-plan total
  /// they replaced.
  int64_t distinct_conditions = 0;
  int64_t plan_conditions = 0;
  /// Sums of the per-plan counters.
  int64_t events_considered = 0;
  int64_t events_skipped_by_index = 0;
  int64_t events_skipped_by_prefilter = 0;
  int64_t matches = 0;
};

/// Evaluates every plan registered in a QueryCatalog in ONE pass per event
/// batch: the type index routes each event to the plans whose alphabet
/// contains its type value, the shared pre-filter bitmap answers each
/// plan's §4.5 ShouldProcess from conditions evaluated at most once per
/// event, and surviving events are pushed into per-plan engines (one
/// registered engine instance per plan, all built from the same options
/// template) whose sinks demultiplex into the catalog sink with the plan
/// id attached.
///
/// Registration is picked up at batch boundaries: every Push / PushBatch /
/// Flush first compares the catalog's generation with the snapshot being
/// served and, when it moved, creates engines for added plans and drops
/// removed ones (discarding their partial matches — matches already
/// delivered stay delivered). A plan added mid-stream sees only the
/// events pushed after the refresh that admitted it.
///
/// Contract: same stream contract as engine::Engine (in-order timestamps,
/// or bounded lateness via the options template; Flush once at
/// end-of-stream; Reset to reuse). For every plan the delivered match set
/// is identical to a standalone engine of the same kind running that plan
/// alone over the same events (differential-tested in
/// tests/catalog_test.cc; argument in docs/SEMANTICS.md §10). Not
/// thread-safe; drive from one thread.
class CatalogEngine {
 public:
  /// Validates the options (sink set, engine name registered) and serves
  /// `catalog` — initially empty catalogs are fine, plans may be added
  /// while streaming. Fails fast when a registered plan cannot be built
  /// under the chosen engine (e.g. partitioned over a non-partitionable
  /// plan).
  static Result<std::unique_ptr<CatalogEngine>> Create(
      std::shared_ptr<QueryCatalog> catalog, CatalogOptions options);

  /// Offers the next event to every interested plan. An error (late
  /// timestamp, failed refresh) names the plan it arose in, if any;
  /// engine state is unusable for this stream afterwards except via
  /// Reset().
  Status Push(const Event& event);

  /// Pushes a span of events under the same contract; the registration
  /// refresh runs once per call, not per event.
  Status PushBatch(std::span<const Event> events);

  /// Columnar ingest: one pass over the batch in which the shared
  /// pre-filter table is evaluated per COLUMN (SharedIndex::BeginBatch)
  /// instead of per event, and the type-index lookup is resolved per
  /// dictionary code for STRING routing attributes. Each surviving row is
  /// materialized at most once — lazily, on its first interested passing
  /// plan — and offered to the per-plan engines in the same order as
  /// PushBatch over the same events, so every plan's match set and
  /// counters are unchanged (docs/SEMANTICS.md §11).
  Status PushColumnar(const ColumnarBatch& batch);

  /// End-of-stream barrier: flushes every per-plan engine (delivering all
  /// remaining matches). After Flush, Push fails with FailedPrecondition
  /// until Reset().
  Status Flush();

  /// Drops all per-plan execution state and counters; registered plans
  /// stay registered and their engines are reused after an engine-level
  /// Reset. The stream may restart from scratch.
  void Reset();

  CatalogStats stats() const;

  /// Serializes the full multi-query runtime state into `writer`: a
  /// "catalog" section (stream cursor plus per-plan routing counters) and
  /// one nested, self-validating checkpoint per registered plan under
  /// "plan/<id>" (the plan engine's own Checkpoint output, sealed with its
  /// own CRCs). Call between events; the engine keeps running.
  Status Checkpoint(storage::CheckpointWriter* writer);

  /// Restores state written by Checkpoint() of a catalog engine serving
  /// the same registered plans (matched by id) under the same
  /// configuration. Returns InvalidArgument when the registered plan set
  /// differs from the checkpointed one, Corruption for malformed payloads.
  /// On error the engine is left Reset().
  Status Restore(const storage::CheckpointReader& reader);

  /// One row per registered plan, sorted by id.
  std::vector<PlanStats> plan_stats() const;

  const QueryCatalog& catalog() const { return *catalog_; }

 private:
  /// Execution state of one registered plan. Heap-pinned: the engine's
  /// sink closure captures the runtime's address.
  struct PlanRuntime {
    std::string id;
    std::shared_ptr<const plan::CompiledPlan> plan;
    std::unique_ptr<engine::Engine> engine;
    int64_t matches = 0;
    int64_t events_considered = 0;
    int64_t events_skipped_by_prefilter = 0;
    /// Catalog events_pushed at registration (or Reset); the events this
    /// plan was registered for is events_pushed - events_seen_base, and
    /// the index-skip count is what the other counters leave unaccounted.
    int64_t events_seen_base = 0;
  };

  CatalogEngine(std::shared_ptr<QueryCatalog> catalog, CatalogOptions options)
      : catalog_(std::move(catalog)), options_(std::move(options)) {}

  /// Rebuilds runtimes_ + index_ against the current catalog snapshot if
  /// the generation moved. All-or-nothing: on error the engine keeps
  /// serving the previous snapshot.
  Status Refresh();

  Result<std::unique_ptr<PlanRuntime>> MakeRuntime(const CatalogEntry& entry);

  /// Push of one event against the current snapshot (no refresh).
  Status PushOne(const Event& event);

  int64_t IndexSkips(const PlanRuntime& rt) const;

  std::shared_ptr<QueryCatalog> catalog_;
  CatalogOptions options_;
  /// Served registration state; entries sorted by id, aligned with
  /// index_'s plan positions.
  std::vector<std::unique_ptr<PlanRuntime>> runtimes_;
  std::unique_ptr<SharedIndex> index_;
  int64_t snapshot_generation_ = -1;
  int64_t snapshot_refreshes_ = 0;
  int64_t events_pushed_ = 0;
  bool flushed_ = false;
};

}  // namespace ses::catalog

#endif  // SES_CATALOG_CATALOG_ENGINE_H_
