#include "catalog/catalog_engine.h"

#include <utility>

#include "engine/registry.h"

namespace ses::catalog {

namespace {

/// Re-issues `status` with the plan id prepended, so a multi-plan failure
/// names the query it arose in.
Status TagPlan(const std::string& id, const Status& status) {
  return Status(status.code(), "plan '" + id + "': " + status.message());
}

}  // namespace

Result<std::unique_ptr<CatalogEngine>> CatalogEngine::Create(
    std::shared_ptr<QueryCatalog> catalog, CatalogOptions options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("CatalogEngine requires a catalog");
  }
  if (options.sink == nullptr) {
    return Status::InvalidArgument(
        "CatalogOptions::sink must be set (it receives every match tagged "
        "with its plan id)");
  }
  if (!engine::EngineRegistry::Global().Contains(options.engine)) {
    return Status::NotFound("unknown per-plan engine '" + options.engine +
                            "' (see EngineRegistry::List)");
  }
  auto engine = std::unique_ptr<CatalogEngine>(
      new CatalogEngine(std::move(catalog), std::move(options)));
  // Serve the current registration state right away, so a plan the chosen
  // engine cannot execute fails here instead of at the first Push.
  SES_RETURN_IF_ERROR(engine->Refresh());
  return engine;
}

Result<std::unique_ptr<CatalogEngine::PlanRuntime>> CatalogEngine::MakeRuntime(
    const CatalogEntry& entry) {
  auto runtime = std::make_unique<PlanRuntime>();
  runtime->id = entry.id;
  runtime->plan = entry.plan;
  runtime->events_seen_base = events_pushed_;
  engine::EngineOptions engine_options = options_.engine_options;
  // Per-plan periodic checkpoints would each write a partial state file;
  // the catalog checkpoints as a whole (CatalogEngine::Checkpoint).
  engine_options.checkpoint_interval_events = 0;
  engine_options.checkpoint_sink = nullptr;
  // The runtime is heap-pinned and owns the engine, so its address outlives
  // every sink invocation (sinks run inside Push/Flush).
  PlanRuntime* raw = runtime.get();
  engine_options.sink = [this, raw](Match&& match) {
    ++raw->matches;
    options_.sink(raw->id, std::move(match));
  };
  Result<std::unique_ptr<engine::Engine>> built = engine::CreateEngine(
      options_.engine, entry.plan, std::move(engine_options));
  if (!built.ok()) return TagPlan(entry.id, built.status());
  runtime->engine = std::move(*built);
  return runtime;
}

Status CatalogEngine::Refresh() {
  if (catalog_->generation() == snapshot_generation_) return Status::OK();
  std::shared_ptr<const CatalogSnapshot> snapshot = catalog_->Snapshot();

  SharedIndexOptions index_options;
  index_options.enable_type_index = options_.shared_type_index;
  index_options.enable_shared_prefilter = options_.shared_prefilter;
  if (!options_.type_attribute.empty() && !snapshot->empty()) {
    const Schema& schema =
        snapshot->entries().front().plan->pattern().schema();
    SES_ASSIGN_OR_RETURN(index_options.type_attribute,
                         schema.IndexOf(options_.type_attribute));
    if (schema.attribute(index_options.type_attribute).type ==
        ValueType::kDouble) {
      return Status::InvalidArgument(
          "type attribute '" + options_.type_attribute +
          "' is DOUBLE-typed; floating-point equality cannot route events");
    }
  }

  // Pass 1: build runtimes for newly added plans. Any failure leaves the
  // engine serving the previous snapshot untouched.
  std::vector<std::unique_ptr<PlanRuntime>> next(snapshot->size());
  {
    size_t old_pos = 0;
    for (size_t pos = 0; pos < snapshot->size(); ++pos) {
      const CatalogEntry& entry = snapshot->entries()[pos];
      while (old_pos < runtimes_.size() && runtimes_[old_pos]->id < entry.id) {
        ++old_pos;
      }
      // Same id but a different compiled plan means the query was removed
      // and re-registered between refreshes: treat it as new, the old
      // runtime (and its partial matches) is dropped at commit.
      if (old_pos < runtimes_.size() && runtimes_[old_pos]->id == entry.id &&
          runtimes_[old_pos]->plan == entry.plan) {
        continue;  // retained; moved into place below
      }
      SES_ASSIGN_OR_RETURN(next[pos], MakeRuntime(entry));
    }
  }

  // Pass 2 (commit, cannot fail): move retained runtimes into place.
  // Runtimes of removed plans stay behind and are destroyed with `next`'s
  // predecessor — their undelivered partial matches are discarded.
  size_t old_pos = 0;
  for (size_t pos = 0; pos < snapshot->size(); ++pos) {
    if (next[pos] != nullptr) continue;
    const std::string& id = snapshot->entries()[pos].id;
    while (runtimes_[old_pos] == nullptr || runtimes_[old_pos]->id != id) {
      ++old_pos;
    }
    next[pos] = std::move(runtimes_[old_pos]);
  }
  runtimes_ = std::move(next);
  index_ = std::make_unique<SharedIndex>(*snapshot, index_options);
  snapshot_generation_ = snapshot->generation();
  ++snapshot_refreshes_;
  return Status::OK();
}

Status CatalogEngine::PushOne(const Event& event) {
  ++events_pushed_;
  if (runtimes_.empty()) return Status::OK();
  index_->BeginEvent(event);
  for (int pos : index_->InterestedPlans(event)) {
    PlanRuntime& runtime = *runtimes_[pos];
    if (!index_->PassesPrefilter(pos, event)) {
      ++runtime.events_skipped_by_prefilter;
      continue;
    }
    ++runtime.events_considered;
    if (Status status = runtime.engine->Push(event); !status.ok()) {
      return TagPlan(runtime.id, status);
    }
  }
  return Status::OK();
}

Status CatalogEngine::Push(const Event& event) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "Push after Flush: call Reset() before pushing a new stream");
  }
  SES_RETURN_IF_ERROR(Refresh());
  return PushOne(event);
}

Status CatalogEngine::PushBatch(std::span<const Event> events) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "PushBatch after Flush: call Reset() before pushing a new stream");
  }
  SES_RETURN_IF_ERROR(Refresh());
  for (const Event& event : events) {
    SES_RETURN_IF_ERROR(PushOne(event));
  }
  return Status::OK();
}

Status CatalogEngine::PushColumnar(const ColumnarBatch& batch) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "PushColumnar after Flush: call Reset() before pushing a new "
        "stream");
  }
  SES_RETURN_IF_ERROR(Refresh());
  if (runtimes_.empty()) {
    events_pushed_ += static_cast<int64_t>(batch.size());
    return Status::OK();
  }
  index_->BeginBatch(batch);
  Event row_event;
  for (size_t row = 0; row < batch.size(); ++row) {
    ++events_pushed_;
    bool materialized = false;
    for (int pos : index_->InterestedPlansRow(batch, row)) {
      PlanRuntime& runtime = *runtimes_[pos];
      if (!index_->PassesPrefilterRow(pos, row)) {
        ++runtime.events_skipped_by_prefilter;
        continue;
      }
      ++runtime.events_considered;
      // First interested passing plan pays the row materialization; the
      // other plans of this row reuse it.
      if (!materialized) {
        row_event = batch.RowEvent(row);
        materialized = true;
      }
      if (Status status = runtime.engine->Push(row_event); !status.ok()) {
        return TagPlan(runtime.id, status);
      }
    }
  }
  return Status::OK();
}

Status CatalogEngine::Flush() {
  if (flushed_) return Status::OK();
  // Pick up pending removals first: a plan removed before the flush must
  // not deliver its buffered matches. Plans added here contribute nothing.
  SES_RETURN_IF_ERROR(Refresh());
  flushed_ = true;
  for (const auto& runtime : runtimes_) {
    if (Status status = runtime->engine->Flush(); !status.ok()) {
      return TagPlan(runtime->id, status);
    }
  }
  return Status::OK();
}

void CatalogEngine::Reset() {
  for (const auto& runtime : runtimes_) {
    runtime->engine->Reset();
    runtime->matches = 0;
    runtime->events_considered = 0;
    runtime->events_skipped_by_prefilter = 0;
    runtime->events_seen_base = 0;
  }
  events_pushed_ = 0;
  flushed_ = false;
}

Status CatalogEngine::Checkpoint(storage::CheckpointWriter* writer) {
  std::string base;
  storage::PutSigned(&base, events_pushed_);
  storage::PutBool(&base, flushed_);
  storage::PutCount(&base, runtimes_.size());
  for (const auto& runtime : runtimes_) {
    storage::PutString(&base, runtime->id);
    storage::PutSigned(&base, runtime->matches);
    storage::PutSigned(&base, runtime->events_considered);
    storage::PutSigned(&base, runtime->events_skipped_by_prefilter);
    storage::PutSigned(&base, runtime->events_seen_base);
  }
  writer->AddSection("catalog", base);
  for (const auto& runtime : runtimes_) {
    storage::CheckpointWriter nested;
    SES_RETURN_IF_ERROR(runtime->engine->Checkpoint(&nested));
    writer->AddSection("plan/" + runtime->id, std::move(nested).Finish());
  }
  return Status::OK();
}

Status CatalogEngine::Restore(const storage::CheckpointReader& reader) {
  // Serve the current registration state first, so the checkpointed plan
  // set is compared against what would actually run.
  SES_RETURN_IF_ERROR(Refresh());
  Reset();
  Status s = [&]() -> Status {
    Result<std::string_view> base = reader.Section("catalog");
    if (!base.ok()) {
      return Status::Corruption(
          "checkpoint is missing the 'catalog' section");
    }
    const char* p = base->data();
    const char* limit = base->data() + base->size();
    SES_RETURN_IF_ERROR(storage::GetSigned(&p, limit, &events_pushed_));
    SES_RETURN_IF_ERROR(storage::GetBool(&p, limit, &flushed_));
    uint64_t num_plans = 0;
    SES_RETURN_IF_ERROR(storage::GetCount(&p, limit, &num_plans));
    if (num_plans != runtimes_.size()) {
      return Status::InvalidArgument(
          "checkpoint holds " + std::to_string(num_plans) +
          " plans but this catalog serves " +
          std::to_string(runtimes_.size()));
    }
    // Runtimes are sorted by id and the writer walked them in order, so
    // the ids must line up positionally.
    for (const auto& runtime : runtimes_) {
      std::string id;
      SES_RETURN_IF_ERROR(storage::GetString(&p, limit, &id));
      if (id != runtime->id) {
        return Status::InvalidArgument(
            "checkpoint plan '" + id + "' does not match registered plan '" +
            runtime->id + "'");
      }
      SES_RETURN_IF_ERROR(storage::GetSigned(&p, limit, &runtime->matches));
      SES_RETURN_IF_ERROR(
          storage::GetSigned(&p, limit, &runtime->events_considered));
      SES_RETURN_IF_ERROR(storage::GetSigned(
          &p, limit, &runtime->events_skipped_by_prefilter));
      SES_RETURN_IF_ERROR(
          storage::GetSigned(&p, limit, &runtime->events_seen_base));
    }
    if (p != limit) {
      return Status::Corruption(
          "checkpoint 'catalog' section has trailing bytes");
    }
    for (const auto& runtime : runtimes_) {
      Result<std::string_view> nested_bytes =
          reader.Section("plan/" + runtime->id);
      if (!nested_bytes.ok()) {
        return Status::Corruption("checkpoint is missing the state of plan '" +
                                  runtime->id + "'");
      }
      SES_ASSIGN_OR_RETURN(
          storage::CheckpointReader nested,
          storage::CheckpointReader::Parse(std::string(*nested_bytes)));
      if (Status status = runtime->engine->Restore(nested); !status.ok()) {
        return TagPlan(runtime->id, status);
      }
    }
    return Status::OK();
  }();
  if (!s.ok()) Reset();
  return s;
}

int64_t CatalogEngine::IndexSkips(const PlanRuntime& runtime) const {
  return (events_pushed_ - runtime.events_seen_base) -
         runtime.events_considered - runtime.events_skipped_by_prefilter;
}

CatalogStats CatalogEngine::stats() const {
  CatalogStats stats;
  stats.events_pushed = events_pushed_;
  stats.num_plans = static_cast<int64_t>(runtimes_.size());
  stats.generation = snapshot_generation_;
  stats.snapshot_refreshes = snapshot_refreshes_;
  if (index_ != nullptr) {
    stats.type_attribute = index_->type_attribute();
    stats.distinct_conditions = index_->num_distinct_conditions();
    stats.plan_conditions = index_->num_plan_conditions();
  }
  for (const auto& runtime : runtimes_) {
    stats.events_considered += runtime->events_considered;
    stats.events_skipped_by_index += IndexSkips(*runtime);
    stats.events_skipped_by_prefilter += runtime->events_skipped_by_prefilter;
    stats.matches += runtime->matches;
  }
  return stats;
}

std::vector<PlanStats> CatalogEngine::plan_stats() const {
  std::vector<PlanStats> rows;
  rows.reserve(runtimes_.size());
  for (const auto& runtime : runtimes_) {
    PlanStats row;
    row.id = runtime->id;
    row.matches = runtime->matches;
    row.events_considered = runtime->events_considered;
    row.events_skipped_by_index = IndexSkips(*runtime);
    row.events_skipped_by_prefilter = runtime->events_skipped_by_prefilter;
    row.engine = runtime->engine->stats();
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ses::catalog
