#include "catalog/shared_index.h"

#include <algorithm>
#include <bit>
#include <tuple>
#include <utility>

#include "core/filter.h"

namespace ses::catalog {

namespace {

int TypeRank(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return 0;
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

bool SharedIndex::ValueLess::operator()(const Value& a,
                                        const Value& b) const {
  const int rank_a = TypeRank(a);
  const int rank_b = TypeRank(b);
  if (rank_a != rank_b) return rank_a < rank_b;
  return Compare(a, b) < 0;
}

SharedIndex::SharedIndex(const CatalogSnapshot& snapshot,
                         SharedIndexOptions options)
    : options_(options),
      num_plans_(static_cast<int>(snapshot.size())) {
  const std::vector<CatalogEntry>& entries = snapshot.entries();
  all_plans_.resize(num_plans_);
  for (int pos = 0; pos < num_plans_; ++pos) all_plans_[pos] = pos;

  // Resolve the routing attribute. An explicitly requested attribute that
  // is out of range or DOUBLE-typed was rejected by the catalog engine
  // before we get here; re-checking keeps the index safe standalone.
  if (options_.enable_type_index && !snapshot.empty()) {
    const Schema& schema = entries.front().plan->pattern().schema();
    if (options_.type_attribute >= 0) {
      if (options_.type_attribute < schema.num_attributes() &&
          schema.attribute(options_.type_attribute).type !=
              ValueType::kDouble) {
        type_attribute_ = options_.type_attribute;
      }
    } else {
      int best_count = 0;
      for (int a = 0; a < schema.num_attributes(); ++a) {
        int count = 0;
        for (const CatalogEntry& entry : entries) {
          if (entry.plan->EqualityAlphabet(a).has_value()) ++count;
        }
        if (count > best_count) {
          best_count = count;
          type_attribute_ = a;
        }
      }
    }
  }

  // Invert the per-plan alphabets. Positions are appended in ascending
  // order, so every per-type list (and the universal list) is sorted.
  for (int pos = 0; pos < num_plans_; ++pos) {
    std::optional<std::vector<Value>> alphabet;
    if (type_attribute_ >= 0) {
      alphabet = entries[pos].plan->EqualityAlphabet(type_attribute_);
    }
    if (!alphabet.has_value()) {
      universal_plans_.push_back(pos);
      continue;
    }
    for (Value& value : *alphabet) {
      typed_plans_[std::move(value)].push_back(pos);
    }
  }

  // Deduplicate the active pre-filters into the shared condition table.
  masks_.resize(num_plans_);
  if (options_.enable_shared_prefilter) {
    std::map<ConstantConditionKey, int> table;
    std::vector<std::vector<int>> plan_bits(num_plans_);
    for (int pos = 0; pos < num_plans_; ++pos) {
      const auto& prefilter = entries[pos].plan->shared_prefilter();
      if (prefilter == nullptr || !prefilter->active()) continue;
      for (const Condition& condition : prefilter->constant_conditions()) {
        ++num_plan_conditions_;
        auto [it, inserted] =
            table.emplace(ConstantConditionKey::Of(condition),
                          static_cast<int>(conditions_.size()));
        if (inserted) conditions_.push_back(condition);
        plan_bits[pos].push_back(it->second);
      }
    }
    const size_t words = (conditions_.size() + 63) / 64;
    bitmap_.resize(words);
    for (int pos = 0; pos < num_plans_; ++pos) {
      if (plan_bits[pos].empty()) continue;
      masks_[pos].assign(words, 0);
      for (int bit : plan_bits[pos]) {
        masks_[pos][bit / 64] |= uint64_t{1} << (bit % 64);
      }
    }
  }
}

void SharedIndex::BeginEvent(const Event& event) {
  (void)event;
  bitmap_valid_ = false;
}

const std::vector<int>& SharedIndex::InterestedPlans(const Event& event) {
  if (type_attribute_ < 0) return all_plans_;
  static const std::vector<int> kEmpty;
  const std::vector<int>* typed = &kEmpty;
  auto it = typed_plans_.find(event.value(type_attribute_));
  if (it != typed_plans_.end()) typed = &it->second;
  if (universal_plans_.empty()) return *typed;
  interested_.clear();
  interested_.reserve(typed->size() + universal_plans_.size());
  std::merge(typed->begin(), typed->end(), universal_plans_.begin(),
             universal_plans_.end(), std::back_inserter(interested_));
  return interested_;
}

bool SharedIndex::PassesPrefilter(int pos, const Event& event) {
  const std::vector<uint64_t>& mask = masks_[pos];
  if (mask.empty()) return true;
  if (!bitmap_valid_) EvaluateBitmap(event);
  for (size_t word = 0; word < mask.size(); ++word) {
    if ((mask[word] & bitmap_[word]) != 0) return true;
  }
  return false;
}

void SharedIndex::EvaluateBitmap(const Event& event) {
  std::fill(bitmap_.begin(), bitmap_.end(), 0);
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (conditions_[i].EvaluateConstant(event)) {
      bitmap_[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
  bitmap_valid_ = true;
}

void SharedIndex::BeginBatch(const ColumnarBatch& batch) {
  bitmap_valid_ = false;
  const size_t row_words = (batch.size() + 63) / 64;

  // Every deduplicated condition once, per column.
  condition_rows_.resize(conditions_.size());
  for (size_t i = 0; i < conditions_.size(); ++i) {
    condition_rows_[i].assign(row_words, 0);
    EvaluateConstantColumnar(conditions_[i], batch,
                             condition_rows_[i].data());
  }

  // Fold each plan's condition mask into one row bitmap: row r passes plan
  // pos iff some condition in the plan's mask holds at r — exactly the
  // mask-AND-bitmap test of PassesPrefilter, transposed to rows.
  plan_pass_.resize(masks_.size());
  for (size_t pos = 0; pos < masks_.size(); ++pos) {
    const std::vector<uint64_t>& mask = masks_[pos];
    if (mask.empty()) {
      plan_pass_[pos].clear();
      continue;
    }
    plan_pass_[pos].assign(row_words, 0);
    for (size_t word = 0; word < mask.size(); ++word) {
      uint64_t bits = mask[word];
      while (bits != 0) {
        const size_t condition =
            word * 64 + static_cast<size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::vector<uint64_t>& rows = condition_rows_[condition];
        for (size_t w = 0; w < row_words; ++w) {
          plan_pass_[pos][w] |= rows[w];
        }
      }
    }
  }

  // STRING routing attribute: one typed-plans lookup per dictionary code.
  code_plans_.clear();
  if (type_attribute_ >= 0 &&
      batch.schema().attribute(type_attribute_).type == ValueType::kString) {
    const ColumnarBatch::StringColumn& column =
        batch.string_column(type_attribute_);
    code_plans_.reserve(column.dict.size());
    for (const std::string& value : column.dict) {
      auto it = typed_plans_.find(Value(value));
      code_plans_.push_back(it != typed_plans_.end() ? &it->second : nullptr);
    }
  }
}

const std::vector<int>& SharedIndex::InterestedPlansRow(
    const ColumnarBatch& batch, size_t row) {
  if (type_attribute_ < 0) return all_plans_;
  static const std::vector<int> kEmpty;
  const std::vector<int>* typed = &kEmpty;
  if (batch.schema().attribute(type_attribute_).type == ValueType::kString) {
    const std::vector<int>* resolved =
        code_plans_[batch.string_column(type_attribute_).codes[row]];
    if (resolved != nullptr) typed = resolved;
  } else {
    auto it = typed_plans_.find(
        Value(batch.int64_column(type_attribute_)[row]));
    if (it != typed_plans_.end()) typed = &it->second;
  }
  if (universal_plans_.empty()) return *typed;
  interested_.clear();
  interested_.reserve(typed->size() + universal_plans_.size());
  std::merge(typed->begin(), typed->end(), universal_plans_.begin(),
             universal_plans_.end(), std::back_inserter(interested_));
  return interested_;
}

bool SharedIndex::PassesPrefilterRow(int pos, size_t row) const {
  const std::vector<uint64_t>& pass = plan_pass_[pos];
  if (pass.empty()) return true;
  return ((pass[row >> 6] >> (row & 63)) & 1) != 0;
}

}  // namespace ses::catalog
