#ifndef SES_CATALOG_QUERY_CATALOG_H_
#define SES_CATALOG_QUERY_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "plan/compiled_plan.h"

namespace ses::catalog {

/// One registered standing query: a caller-chosen id and its compiled plan.
struct CatalogEntry {
  std::string id;
  std::shared_ptr<const plan::CompiledPlan> plan;
};

/// An immutable view of the catalog at one registration generation:
/// the entries sorted by id, and the generation number that produced them.
/// Snapshots are cheap (shared plan pointers, copied ids) and outlive any
/// later Add/Remove, so an evaluator can keep matching against one snapshot
/// while registrations continue — it re-snapshots at its next batch
/// boundary (see catalog/catalog_engine.h).
class CatalogSnapshot {
 public:
  int64_t generation() const { return generation_; }
  const std::vector<CatalogEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  friend class QueryCatalog;
  CatalogSnapshot(int64_t generation, std::vector<CatalogEntry> entries)
      : generation_(generation), entries_(std::move(entries)) {}

  int64_t generation_;
  /// Sorted by id, so every snapshot of the same registration state lists
  /// plans in the same order — the evaluation and delivery order of the
  /// catalog engine is deterministic by construction.
  std::vector<CatalogEntry> entries_;
};

/// The registry of standing queries a multi-pattern evaluator serves:
/// hundreds of compiled plans, added and removed by id while streams are
/// being evaluated. Registration never blocks evaluation — mutations bump a
/// generation counter, and evaluators pick up the new state by taking a
/// fresh Snapshot() at a batch boundary (the snapshot they hold stays
/// valid; plans are shared immutable objects).
///
/// All plans must target the same event schema (one catalog serves one
/// stream); the first Add pins the schema and later mismatches are
/// rejected. Thread-safe; one catalog may feed several evaluators.
class QueryCatalog {
 public:
  QueryCatalog() = default;

  /// Registers `plan` under `id`. InvalidArgument on an empty id or a null
  /// plan, AlreadyExists on a duplicate id (remove first to replace — a
  /// silent swap would make per-plan results ambiguous), InvalidArgument on
  /// a schema mismatch with the already-registered plans.
  Status Add(std::string id, std::shared_ptr<const plan::CompiledPlan> plan);

  /// Unregisters the plan under `id`; NotFound when absent. Evaluators drop
  /// the plan's runtime — including partial matches — at their next
  /// snapshot refresh; matches already delivered stay delivered.
  Status Remove(std::string_view id);

  /// True when `id` is registered.
  bool Contains(std::string_view id) const;

  size_t size() const;

  /// Monotone counter, bumped by every successful Add/Remove. Evaluators
  /// compare it against their snapshot's generation to decide whether to
  /// refresh without copying the entry list on every batch.
  int64_t generation() const;

  /// The current registration state as an immutable snapshot.
  std::shared_ptr<const CatalogSnapshot> Snapshot() const;

 private:
  mutable std::mutex mu_;
  /// Sorted by id (binary-searched; snapshots copy it verbatim).
  std::vector<CatalogEntry> entries_;
  int64_t generation_ = 0;
};

}  // namespace ses::catalog

#endif  // SES_CATALOG_QUERY_CATALOG_H_
