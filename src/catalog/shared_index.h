#ifndef SES_CATALOG_SHARED_INDEX_H_
#define SES_CATALOG_SHARED_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "catalog/query_catalog.h"
#include "event/columnar.h"
#include "event/event.h"
#include "query/condition.h"

namespace ses::catalog {

/// Knobs of the shared-work structures, fixed when the index is built
/// (rebuilt on every catalog snapshot refresh, so a handful of times per
/// stream, not per event).
struct SharedIndexOptions {
  /// Event-type inverted index: an event is offered only to plans whose
  /// alphabet on the type attribute contains the event's value (plus the
  /// plans with no complete alphabet, which see every event). Off = every
  /// plan sees every event.
  bool enable_type_index = true;
  /// Shared §4.5 pre-filter: the distinct constant conditions of all
  /// registered plans are deduplicated into one table, evaluated at most
  /// once per event, and each plan's ShouldProcess answer is read off a
  /// bitmap instead of re-evaluating its own condition list.
  bool enable_shared_prefilter = true;
  /// Schema index of the routing ("type") attribute; negative = pick the
  /// attribute on which the most plans have a complete equality alphabet
  /// (ties to the lowest index; see plan::CompiledPlan::EqualityAlphabet).
  int type_attribute = -1;
};

/// The work shared across all plans of one catalog snapshot, rebuilt
/// whenever the registered set changes:
///
///   * the inverted event-type index — type value → sorted positions of
///     the plans whose alphabet contains it — plus the sorted positions of
///     the "universal" plans (no complete alphabet on the type attribute),
///     which must see every event;
///   * the deduplicated constant-condition table and one bitmask per plan
///     over it, realizing every plan's active §4.5 pre-filter as a single
///     AND against a bitmap computed at most once per event.
///
/// Per-event protocol (single-threaded, like the engines it feeds):
/// BeginEvent, then InterestedPlans for the candidate set, then
/// PassesPrefilter per candidate. The bitmap is evaluated lazily on the
/// first PassesPrefilter call, so an event that interests no plan — or
/// only plans without an active pre-filter — costs no condition
/// evaluations at all. Neither structure changes any plan's match set;
/// the argument is docs/SEMANTICS.md §10.
class SharedIndex {
 public:
  /// Builds the index over `snapshot`'s plans (positions 0..size-1 in
  /// snapshot entry order). `options.type_attribute` must be a valid
  /// schema index or negative (the catalog engine validates named
  /// attributes before building).
  SharedIndex(const CatalogSnapshot& snapshot, SharedIndexOptions options);

  /// Resolved schema index of the routing attribute; -1 when the type
  /// index is off (disabled, empty snapshot, or no plan has a complete
  /// alphabet on any candidate attribute).
  int type_attribute() const { return type_attribute_; }
  bool type_index_active() const { return type_attribute_ >= 0; }

  /// Size of the deduplicated constant-condition table, and the sum of the
  /// per-plan condition-list sizes it replaced (the shared-evaluation
  /// saving is the ratio).
  int64_t num_distinct_conditions() const {
    return static_cast<int64_t>(conditions_.size());
  }
  int64_t num_plan_conditions() const { return num_plan_conditions_; }

  /// Starts a new event: invalidates the lazy bitmap.
  void BeginEvent(const Event& event);

  /// Positions of the plans this event must be offered to, sorted
  /// ascending (deterministic evaluation order). With the type index off
  /// this is every plan. The reference is valid until the next BeginEvent.
  const std::vector<int>& InterestedPlans(const Event& event);

  /// Whether plan `pos` must process the current event: true when the plan
  /// has no active shared pre-filter, else whether any of its constant
  /// conditions holds (read off the shared bitmap). Call only between
  /// BeginEvent(e) and the next BeginEvent, with `e` the same event.
  bool PassesPrefilter(int pos, const Event& event);

  /// Columnar batch protocol, the vectorized twin of BeginEvent/
  /// InterestedPlans/PassesPrefilter: BeginBatch evaluates the whole
  /// deduplicated condition table per column (core/filter.h,
  /// EvaluateConstantColumnar) and folds each plan's mask into one
  /// pass-bitmap over the batch's ROWS, so the per-row prefilter answer is
  /// a single bit test. For a STRING routing attribute the typed-plan
  /// lookup is resolved once per dictionary code, not once per row.
  /// Answers are row-for-row identical to the per-event protocol over the
  /// same events (differential-tested in tests/columnar_test.cc).
  void BeginBatch(const ColumnarBatch& batch);

  /// Plans row `row` must be offered to; reference valid until the next
  /// InterestedPlansRow/InterestedPlans/BeginBatch call. Call only between
  /// BeginBatch(b) and the next BeginBatch/BeginEvent, with `b` the same
  /// batch.
  const std::vector<int>& InterestedPlansRow(const ColumnarBatch& batch,
                                             size_t row);

  /// Whether plan `pos` must process row `row` of the batch passed to
  /// BeginBatch.
  bool PassesPrefilterRow(int pos, size_t row) const;

 private:
  /// Strict weak order over Values of possibly different types: rank by
  /// type, Compare within a type (mixed numeric types cannot meet here —
  /// the type attribute is never DOUBLE and alphabet values share its
  /// declared type).
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const;
  };

  void EvaluateBitmap(const Event& event);

  SharedIndexOptions options_;
  int type_attribute_ = -1;
  int num_plans_ = 0;
  int64_t num_plan_conditions_ = 0;

  /// Type value → sorted plan positions whose alphabet contains it.
  std::map<Value, std::vector<int>, ValueLess> typed_plans_;
  /// Sorted positions of plans that must see every event.
  std::vector<int> universal_plans_;
  /// All positions 0..N-1; returned when the type index is off.
  std::vector<int> all_plans_;

  /// Deduplicated constant conditions (one representative each; the lhs
  /// variable id is irrelevant to EvaluateConstant).
  std::vector<Condition> conditions_;
  /// Per plan: bitmask over `conditions_` of its active pre-filter's
  /// conditions; empty = no shared pre-filter for this plan (pass always).
  std::vector<std::vector<uint64_t>> masks_;

  /// Per-event scratch.
  std::vector<uint64_t> bitmap_;
  bool bitmap_valid_ = false;
  std::vector<int> interested_;

  /// Per-batch scratch (BeginBatch). plan_pass_[pos] is plan pos's
  /// pass-bitmap over the batch rows; empty = no active pre-filter (pass
  /// always). condition_rows_[i] is condition i's row bitmap.
  std::vector<std::vector<uint64_t>> condition_rows_;
  std::vector<std::vector<uint64_t>> plan_pass_;
  /// STRING routing attribute only: dictionary code → typed plan list
  /// (null = no plan's alphabet contains the value).
  std::vector<const std::vector<int>*> code_plans_;
};

}  // namespace ses::catalog

#endif  // SES_CATALOG_SHARED_INDEX_H_
