#include "engine/registry.h"

#include <utility>

namespace ses::engine {

namespace {

void RegisterBuiltinEngines(EngineRegistry& registry) {
  // Startup registration cannot collide; ignore the statuses.
  (void)registry.Register(
      "serial", "one global automaton over the whole stream",
      CreateSerialEngine);
  (void)registry.Register(
      "partitioned",
      "serial partition-pure execution, one automaton bank per key",
      CreatePartitionedEngine);
  (void)registry.Register(
      "parallel",
      "hash-sharded multi-threaded runtime with incremental emission",
      CreateParallelEngine);
  (void)registry.Register(
      "brute-force",
      "per-ordering sequential automata (§5.2), canonicalized; exponential",
      CreateBruteForceEngine);
}

}  // namespace

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterBuiltinEngines(*r);
    return r;
  }();
  return *registry;
}

Status EngineRegistry::Register(std::string name, std::string description,
                                EngineFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{std::move(description), std::move(factory)});
  if (!inserted) {
    return Status::AlreadyExists("engine '" + it->first +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Engine>> EngineRegistry::Create(
    std::string_view name, std::shared_ptr<const plan::CompiledPlan> plan,
    EngineOptions options) const {
  EngineFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [entry_name, entry] : entries_) {
        if (!known.empty()) known += ", ";
        known += entry_name;
      }
      return Status::NotFound("unknown engine '" + std::string(name) +
                              "' (registered: " + known + ")");
    }
    factory = it->second.factory;
  }
  // Run the factory outside the lock: factories compile automata and spawn
  // worker threads, and may themselves consult the registry.
  return factory(std::move(plan), std::move(options));
}

bool EngineRegistry::Contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(name) != entries_.end();
}

std::vector<EngineInfo> EngineRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EngineInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    infos.push_back(EngineInfo{name, entry.description});
  }
  return infos;
}

Result<std::unique_ptr<Engine>> CreateEngine(
    std::string_view name, std::shared_ptr<const plan::CompiledPlan> plan,
    EngineOptions options) {
  return EngineRegistry::Global().Create(name, std::move(plan),
                                         std::move(options));
}

}  // namespace ses::engine
