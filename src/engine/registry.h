#ifndef SES_ENGINE_REGISTRY_H_
#define SES_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"

namespace ses::engine {

/// Builds an engine instance from a shared plan and runtime options.
using EngineFactory = std::function<Result<std::unique_ptr<Engine>>(
    std::shared_ptr<const plan::CompiledPlan>, EngineOptions)>;

/// One registry row, as returned by EngineRegistry::List.
struct EngineInfo {
  std::string name;
  std::string description;
};

/// Name → factory table behind every "which engine" decision: the CLI's
/// --engine flag, the engine-comparison bench, and the cross-engine
/// equivalence tests all resolve evaluation strategies through this
/// registry, so a new engine becomes available everywhere by registering
/// one factory. The global instance comes pre-loaded with the four built-in
/// engines ("serial", "partitioned", "parallel", "brute-force"); tests may
/// register additional ones. Thread-safe.
class EngineRegistry {
 public:
  /// The process-wide registry, with built-in engines pre-registered.
  static EngineRegistry& Global();

  /// Registers a factory under `name`. Fails with AlreadyExists on a
  /// duplicate name — engines are registered once, at startup.
  Status Register(std::string name, std::string description,
                  EngineFactory factory);

  /// Instantiates the named engine from `plan`. NotFound for an unknown
  /// name (the message lists the registered ones); otherwise whatever the
  /// factory returns (e.g. FailedPrecondition when a partition-pure engine
  /// is asked to run a non-partitionable plan).
  Result<std::unique_ptr<Engine>> Create(
      std::string_view name, std::shared_ptr<const plan::CompiledPlan> plan,
      EngineOptions options) const;

  /// All registered engines, sorted by name.
  std::vector<EngineInfo> List() const;

  /// True when `name` is registered. Lets composite evaluators (the
  /// multi-pattern catalog, which instantiates one registered engine per
  /// plan) validate the engine choice at construction instead of failing on
  /// the first plan registration.
  bool Contains(std::string_view name) const;

 private:
  struct Entry {
    std::string description;
    EngineFactory factory;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Shorthand for EngineRegistry::Global().Create(...).
Result<std::unique_ptr<Engine>> CreateEngine(
    std::string_view name, std::shared_ptr<const plan::CompiledPlan> plan,
    EngineOptions options);

}  // namespace ses::engine

#endif  // SES_ENGINE_REGISTRY_H_
