#ifndef SES_ENGINE_ENGINE_H_
#define SES_ENGINE_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "core/match.h"
#include "event/columnar.h"
#include "exec/rebalancer.h"
#include "exec/reorder_buffer.h"
#include "plan/compiled_plan.h"
#include "storage/checkpoint.h"

namespace ses::engine {

/// Runtime knobs of an engine instance, fixed at creation. Plan-level
/// choices (pre-filter, shared constant evaluation, partition attribute)
/// live in plan::PlanOptions instead — the same plan runs under any engine
/// options. Fields that a given engine does not use are ignored: the
/// serial engine reads only `sink`, the parallel engine reads everything.
struct EngineOptions {
  /// Streaming match consumer; required (CreateEngine rejects a null sink).
  /// Runs on the thread that drives the engine and must not re-enter it.
  /// Use CollectInto for the common collect-to-vector case.
  MatchSink sink;
  /// Worker shards of the parallel engine.
  int num_shards = 4;
  /// Events per worker batch (parallel engine).
  size_t batch_size = 256;
  /// Per-shard queue capacity, in batches (parallel engine).
  size_t queue_capacity = 64;
  /// Idle-partition eviction threshold τe of the parallel engine; 0 means
  /// "evict as soon as provably safe", negative disables eviction (and with
  /// it incremental emission). See exec::ParallelOptions::idle_timeout.
  Duration idle_timeout = 0;
  /// How often (in ingested events) the parallel engine emits matches below
  /// the safety watermark. See exec::ParallelOptions::emit_interval_events.
  int64_t emit_interval_events = 4096;
  /// Adaptive shard rebalancing (parallel engine; off by default).
  exec::RebalanceOptions rebalance;
  /// Bounded-lateness ingest (every engine): events may arrive up to this
  /// many ticks behind the newest timestamp seen and are re-sequenced by
  /// an exec::ReorderBuffer stage before they reach the evaluator. 0 (the
  /// default) requires in-order input: a backwards timestamp is an
  /// InvalidArgument (or a counted drop, per `late_policy`). The stage
  /// delays delivery — and with it watermark advancement, window expiry,
  /// and incremental emission — by up to the bound.
  Duration lateness_bound = 0;
  /// What to do with events that violate `lateness_bound`.
  exec::LatePolicy late_policy = exec::LatePolicy::kReject;
  /// Periodic checkpointing (every engine): after every
  /// `checkpoint_interval_events` pushed events the engine serializes its
  /// full runtime state with Checkpoint() and hands the writer to
  /// `checkpoint_sink`, which may add embedder sections (e.g. the CLI's
  /// output cursor) before sealing and persisting the bytes. 0 (the
  /// default) disables periodic checkpoints; explicit Checkpoint() calls
  /// work either way. Checkpointing is transparent: it never changes the
  /// match sequence or the statistics of the run.
  int64_t checkpoint_interval_events = 0;
  /// Receives the filled writer at each periodic checkpoint. Runs on the
  /// thread that drives the engine; a non-OK status aborts the triggering
  /// Push. Required when checkpoint_interval_events > 0.
  std::function<Status(storage::CheckpointWriter&)> checkpoint_sink;
};

/// Engine-agnostic statistics snapshot. Counters an engine cannot measure
/// are zero.
struct EngineStats {
  int64_t events_pushed = 0;
  /// Matches delivered to the sink so far (incremental + Flush).
  int64_t matches_emitted = 0;
  /// Matches delivered before the Flush barrier (parallel engine's
  /// watermark-bounded incremental emission; serial-style engines deliver
  /// on every Push, which also counts as early).
  int64_t matches_emitted_early = 0;
  /// Peak number of completed-but-undelivered matches resident in the
  /// engine — the buffer that incremental emission bounds.
  int64_t max_buffered_matches = 0;
  /// Resident partitions (partition-pure engines; cumulative created for
  /// the parallel engine, whose resident set fluctuates with eviction).
  int64_t num_partitions = 0;
  /// Events dropped by the §4.5 pre-filter before reaching any automaton
  /// (executor-side for the serial engines, ingest-side for parallel).
  int64_t events_filtered = 0;
  /// Automaton instances created / reclaimed across all executors (the
  /// paper's Experiments 1–2 currency; zero for the parallel engine, whose
  /// shards do not export executor internals).
  int64_t instances_created = 0;
  int64_t instances_pruned = 0;
  /// Peak simultaneously active instances (summed across partitions for
  /// the partitioned engine).
  int64_t max_simultaneous_instances = 0;
  /// Parallel engine only: partitions reclaimed by idle eviction, peak
  /// shard queue depth, and batches enqueued to worker shards.
  int64_t partitions_evicted = 0;
  int64_t max_queue_depth = 0;
  int64_t batches_enqueued = 0;
  /// Bounded-lateness ingest stage (any engine): events that arrived out
  /// of order and were re-sequenced, events that violated the bound
  /// (rejected or dropped per EngineOptions::late_policy), and the peak
  /// number of events held back in the reorder buffer.
  int64_t events_reordered = 0;
  int64_t events_late = 0;
  int64_t max_reorder_buffered = 0;
  /// Parallel engine only: what the adaptive shard rebalancer did (all
  /// zero when `EngineOptions::rebalance.enabled` is false).
  exec::RebalancerStats rebalancer;
};

/// Name → value snapshot of every EngineStats counter, in declaration
/// order. The benchmark harness folds this into its machine-readable case
/// records (see bench/harness.h), so counter names are part of the
/// BENCH_*.json schema — extend, don't rename.
std::vector<std::pair<std::string, int64_t>> EngineCounters(
    const EngineStats& stats);

/// A streaming SES evaluator behind a uniform push/flush interface. All
/// four evaluation strategies of this repository — the global serial
/// automaton, serial partitioned execution, the sharded parallel runtime,
/// and the §5.2 brute-force baseline — implement this interface, are
/// constructed from the same immutable plan::CompiledPlan, and deliver
/// matches through the same MatchSink, so harnesses, benchmarks and the CLI
/// can treat "which engine" as a run-time string (see engine/registry.h).
///
/// Contract: Push events in event-time order — strictly increasing
/// timestamps when `EngineOptions::lateness_bound` is 0 (the default), or
/// at most `lateness_bound` ticks behind the newest timestamp seen when it
/// is positive (the base-class ingest stage re-sequences them before any
/// evaluator sees them). A violating timestamp returns InvalidArgument
/// under LatePolicy::kReject or is counted and dropped under kDrop; either
/// way engine state is not corrupted and the stream may continue. Call
/// Flush() once at end-of-stream (pending matches are delivered to the
/// sink); after Flush, Push returns FailedPrecondition until Reset()
/// returns the engine to its initial state for a new stream. WHEN matches
/// reach the sink is engine-specific — the only guarantee is that after
/// Flush() the sink has received exactly the pattern's match set
/// (canonical SES semantics, Definition 2 + skip-till-next-match). Engines
/// are not thread-safe; drive each instance from one thread.
///
/// Structure: the public entry points are non-virtual and implement the
/// shared ingest stage (ordering enforcement, bounded-lateness reordering,
/// the events_pushed/late/reordered counters); engines implement the
/// protected *Ordered/*Impl hooks, which receive a strictly increasing
/// stream by construction.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registry name of this engine ("serial", "parallel", ...).
  virtual std::string_view name() const = 0;

  /// Offers the next event. Returns InvalidArgument when the timestamp
  /// violates the lateness bound (see the class contract) and
  /// FailedPrecondition after Flush().
  Status Push(const Event& event);

  /// Pushes a span of events; the span must continue the stream under the
  /// same lateness contract as Push. In-order spans with
  /// `lateness_bound == 0` are forwarded to the engine without copying.
  Status PushBatch(std::span<const Event> events);

  /// Columnar ingest: pushes every row of `batch` (same stream contract as
  /// PushBatch) without materializing row-wise Events on the fast path.
  /// The batch's schema must be the plan's schema. When the rows are in
  /// order and no reorder stage is engaged, the base class verifies the
  /// ordering directly on the timestamp column, evaluates the plan's
  /// vectorized §4.5 pre-filter (plan::CompiledPlan::
  /// shared_vector_prefilter) into a pass-bitmap, counts the dropped rows,
  /// and hands batch + bitmap to the engine hook; rows the bitmap drops
  /// are never materialized, routed, or offered to an automaton. Out-of-
  /// order rows (or an engaged reorder stage) fall back to the row-wise
  /// ingest logic, so the lateness contract is byte-for-byte the
  /// PushBatch one. The delivered match set is identical either way
  /// (docs/SEMANTICS.md §11).
  Status PushColumnar(const ColumnarBatch& batch);

  /// End-of-stream barrier: releases everything the reorder stage still
  /// holds, then delivers every remaining match to the sink and snapshots
  /// stats(). The engine stays usable for stats reads; Reset() before
  /// pushing a new stream.
  Status Flush();

  /// Drops all execution state (instances, partitions, watermarks,
  /// reorder buffer, statistics). The compiled plan is retained — resets
  /// are cheap.
  void Reset();

  /// Statistics snapshot; the ingest-stage counters (events_pushed,
  /// events_reordered, events_late, max_reorder_buffered) are maintained
  /// by the base class.
  EngineStats stats() const;

  /// Serializes the engine's complete runtime state into `writer` as two
  /// sections: "engine" (the shared ingest stage — ordering watermark,
  /// reorder-buffer tail, ingest counters, the engine's registry name) and
  /// "state" (the evaluator: open automaton instances with their match
  /// buffers, partitions, shard and rebalancer state, statistics). Call
  /// between events, not from inside a sink. The engine keeps running; a
  /// Restore()d engine continues the stream with a byte-identical match
  /// sequence and statistics (docs/SEMANTICS.md §12).
  Status Checkpoint(storage::CheckpointWriter* writer);

  /// Restores state written by Checkpoint() of an engine with the same
  /// registry name, plan, and configuration. Returns InvalidArgument when
  /// the checkpoint was written by a different engine or lateness
  /// configuration, Corruption for malformed payloads. On error the engine
  /// is left Reset().
  Status Restore(const storage::CheckpointReader& reader);

  /// The immutable plan this engine executes.
  const plan::CompiledPlan& plan() const { return *plan_; }

 protected:
  Engine(std::shared_ptr<const plan::CompiledPlan> plan,
         EngineOptions options);

  /// Evaluator hooks. The base class guarantees the events arriving here
  /// form one strictly increasing timestamp sequence per stream.
  virtual Status PushOrdered(const Event& event) = 0;
  /// Default loops over PushOrdered; the parallel engine overrides it with
  /// genuinely batched ingest.
  virtual Status PushBatchOrdered(std::span<const Event> events);
  /// Columnar hook: `pass` is the §4.5 pass-bitmap (bit r of word r/64 =
  /// row r must be processed), or nullptr when every row passes (filter
  /// disabled or inactive). The base class has already verified ordering
  /// and counted the filtered rows. The default materializes the passing
  /// rows and forwards to PushBatchOrdered; the parallel engine overrides
  /// it to route straight off the columns.
  virtual Status PushColumnarOrdered(const ColumnarBatch& batch,
                                     const uint64_t* pass);
  virtual Status FlushImpl() = 0;
  virtual void ResetImpl() = 0;
  virtual EngineStats StatsImpl() const = 0;

  /// Serializes the evaluator's state (the "state" section payload) with
  /// the checkpoint payload primitives. May quiesce worker threads.
  virtual Status CheckpointImpl(std::string* out) = 0;
  /// Restores what CheckpointImpl wrote. Runs on a freshly Reset()
  /// evaluator; must consume the payload exactly.
  virtual Status RestoreImpl(const char** p, const char* limit) = 0;

  std::shared_ptr<const plan::CompiledPlan> plan_;
  EngineOptions options_;

 private:
  /// Handles one bound-violating event on the lateness_bound == 0 path.
  Status HandleLate(const Event& event);

  /// Fires a periodic checkpoint when the event counter has crossed the
  /// next interval boundary (no-op when disabled).
  Status MaybeCheckpoint();

  /// The ordering/lateness stage of PushBatch, after the flushed check and
  /// the events_pushed accounting (PushColumnar's out-of-order fallback
  /// re-enters here with materialized rows).
  Status IngestSpan(std::span<const Event> events);

  /// Reorder stage; engaged only when options_.lateness_bound > 0.
  std::unique_ptr<exec::ReorderBuffer> reorder_;
  /// Scratch for events released by the reorder stage.
  std::vector<Event> released_;
  /// Newest admitted timestamp (lateness_bound == 0 path).
  Timestamp last_timestamp_ = 0;
  bool has_last_timestamp_ = false;
  bool flushed_ = false;
  int64_t events_pushed_ = 0;
  int64_t events_late_ = 0;
  /// Event count at which the next periodic checkpoint fires (disabled
  /// when checkpoint_interval_events is 0).
  int64_t next_checkpoint_at_ = 0;
  /// Rows the columnar pre-filter dropped before the engine hook; added to
  /// StatsImpl().events_filtered in stats() so row and columnar ingest
  /// report the same totals (the executor-side filter never sees these).
  int64_t events_filtered_columnar_ = 0;
  /// Pass-bitmap scratch for PushColumnar, reused across batches.
  std::vector<uint64_t> pass_words_;
  /// Row materialization scratch of the default PushColumnarOrdered.
  std::vector<Event> columnar_rows_;
};

/// A sink that appends every match to `*out` (not owned; must outlive the
/// engine's last Push/Flush). The common harness/test configuration.
MatchSink CollectInto(std::vector<Match>* out);

/// Factory functions behind the registry entries (engine/registry.h). All
/// validate that `options.sink` is set; the partition-pure engines
/// additionally require plan->has_partition_attribute().

/// "serial": one global Matcher over the shared automaton. Matches reach
/// the sink as their window expires (on Push) and at Flush.
Result<std::unique_ptr<Engine>> CreateSerialEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options);

/// "partitioned": serial partition-pure execution (core::PartitionedMatcher,
/// one Matcher per key, all sharing the plan's automaton and pre-filter).
Result<std::unique_ptr<Engine>> CreatePartitionedEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options);

/// "parallel": the sharded runtime (exec::ParallelPartitionedMatcher) with
/// the sink wired through for incremental watermark-bounded emission; the
/// plan's pre-filter is additionally applied at ingest, so filtered events
/// are never routed or queued.
Result<std::unique_ptr<Engine>> CreateParallelEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options);

/// "brute-force": the §5.2 baseline bank of per-ordering sequential
/// automata, reduced to the canonical SES match set by replaying each
/// candidate against the recent event window (IsOperationalMatch). Fails
/// for patterns with group variables. Exponential; use on small inputs.
Result<std::unique_ptr<Engine>> CreateBruteForceEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options);

}  // namespace ses::engine

#endif  // SES_ENGINE_ENGINE_H_
