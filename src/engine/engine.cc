#include "engine/engine.h"

#include <algorithm>
#include <bit>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "baseline/brute_force.h"
#include "baseline/reference_matcher.h"
#include "core/matcher.h"
#include "core/partitioned.h"
#include "exec/parallel_partitioned.h"

namespace ses::engine {

namespace {

Status ValidateSink(const EngineOptions& options) {
  if (options.sink == nullptr) {
    return Status::InvalidArgument(
        "EngineOptions::sink must be set (use CollectInto to gather matches "
        "into a vector)");
  }
  return Status::OK();
}

Status RequirePartitionAttribute(const plan::CompiledPlan& plan,
                                 std::string_view engine) {
  if (plan.has_partition_attribute()) return Status::OK();
  return Status::FailedPrecondition(
      std::string(engine) +
      " engine requires a partition attribute: the pattern's equality "
      "conditions must form a complete graph on one attribute "
      "(see core/partitioned.h)");
}

/// "serial": one global Matcher; matches drain to the sink on every Push.
class SerialEngine : public Engine {
 public:
  SerialEngine(std::shared_ptr<const plan::CompiledPlan> plan,
               EngineOptions options)
      : Engine(std::move(plan), std::move(options)),
        matcher_(plan_->shared_automaton(), plan_->matcher_options(),
                 plan_->shared_prefilter()) {}

  std::string_view name() const override { return "serial"; }

 protected:
  Status PushOrdered(const Event& event) override {
    SES_RETURN_IF_ERROR(matcher_.Push(event, &buffer_));
    Drain(/*early=*/true);
    return Status::OK();
  }

  Status FlushImpl() override {
    matcher_.Flush(&buffer_);
    Drain(/*early=*/false);
    return Status::OK();
  }

  void ResetImpl() override {
    matcher_.Reset();
    buffer_.clear();
    stats_ = EngineStats{};
  }

  EngineStats StatsImpl() const override {
    EngineStats stats = stats_;
    const ExecutorStats& executor = matcher_.stats();
    stats.events_filtered = executor.events_filtered;
    stats.instances_created = executor.instances_created;
    stats.instances_pruned = executor.instances_expired;
    stats.max_simultaneous_instances = executor.max_simultaneous_instances;
    return stats;
  }

  Status CheckpointImpl(std::string* out) override {
    matcher_.Checkpoint(out);
    storage::PutSigned(out, stats_.matches_emitted);
    storage::PutSigned(out, stats_.matches_emitted_early);
    storage::PutSigned(out, stats_.max_buffered_matches);
    return Status::OK();
  }

  Status RestoreImpl(const char** p, const char* limit) override {
    SES_RETURN_IF_ERROR(matcher_.Restore(p, limit));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.matches_emitted));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.matches_emitted_early));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.max_buffered_matches));
    return Status::OK();
  }

 private:
  void Drain(bool early) {
    stats_.max_buffered_matches = std::max(
        stats_.max_buffered_matches, static_cast<int64_t>(buffer_.size()));
    for (Match& match : buffer_) {
      ++stats_.matches_emitted;
      if (early) ++stats_.matches_emitted_early;
      options_.sink(std::move(match));
    }
    buffer_.clear();
  }

  Matcher matcher_;
  std::vector<Match> buffer_;
  EngineStats stats_;
};

/// "partitioned": serial partition-pure execution, one Matcher per key.
class PartitionedEngine : public Engine {
 public:
  PartitionedEngine(std::shared_ptr<const plan::CompiledPlan> plan,
                    EngineOptions options, PartitionedMatcher matcher)
      : Engine(std::move(plan), std::move(options)),
        matcher_(std::move(matcher)) {}

  std::string_view name() const override { return "partitioned"; }

 protected:
  Status PushOrdered(const Event& event) override {
    SES_RETURN_IF_ERROR(matcher_.Push(event, &buffer_));
    Drain(/*early=*/true);
    return Status::OK();
  }

  Status FlushImpl() override {
    matcher_.Flush(&buffer_);
    Drain(/*early=*/false);
    return Status::OK();
  }

  void ResetImpl() override {
    matcher_.Reset();
    buffer_.clear();
    stats_ = EngineStats{};
  }

  EngineStats StatsImpl() const override {
    EngineStats stats = stats_;
    stats.num_partitions = matcher_.num_partitions();
    stats.max_simultaneous_instances =
        matcher_.stats().max_simultaneous_instances;
    const ExecutorStats aggregated = matcher_.AggregatedExecutorStats();
    stats.events_filtered = aggregated.events_filtered;
    stats.instances_created = aggregated.instances_created;
    stats.instances_pruned = aggregated.instances_expired;
    return stats;
  }

  Status CheckpointImpl(std::string* out) override {
    matcher_.Checkpoint(out);
    storage::PutSigned(out, stats_.matches_emitted);
    storage::PutSigned(out, stats_.matches_emitted_early);
    storage::PutSigned(out, stats_.max_buffered_matches);
    return Status::OK();
  }

  Status RestoreImpl(const char** p, const char* limit) override {
    SES_RETURN_IF_ERROR(matcher_.Restore(p, limit));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.matches_emitted));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.matches_emitted_early));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.max_buffered_matches));
    return Status::OK();
  }

 private:
  void Drain(bool early) {
    stats_.max_buffered_matches = std::max(
        stats_.max_buffered_matches, static_cast<int64_t>(buffer_.size()));
    for (Match& match : buffer_) {
      ++stats_.matches_emitted;
      if (early) ++stats_.matches_emitted_early;
      options_.sink(std::move(match));
    }
    buffer_.clear();
  }

  PartitionedMatcher matcher_;
  std::vector<Match> buffer_;
  EngineStats stats_;
};

/// "parallel": the sharded runtime with the sink wired through. The plan's
/// pre-filter additionally runs at ingest, so filtered events are never
/// routed, copied into batches, or queued.
class ParallelEngine : public Engine {
 public:
  static Result<std::unique_ptr<Engine>> Make(
      std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options) {
    auto engine = std::unique_ptr<ParallelEngine>(
        new ParallelEngine(std::move(plan), std::move(options)));
    exec::ParallelOptions parallel;
    parallel.num_shards = engine->options_.num_shards;
    parallel.batch_size = engine->options_.batch_size;
    parallel.queue_capacity = engine->options_.queue_capacity;
    parallel.idle_timeout = engine->options_.idle_timeout;
    parallel.emit_interval_events = engine->options_.emit_interval_events;
    parallel.rebalance = engine->options_.rebalance;
    parallel.matcher = engine->plan_->matcher_options();
    // The engine is heap-allocated and owns the matcher, so its address
    // outlives every sink invocation (sinks run inside Push/Flush).
    ParallelEngine* raw = engine.get();
    parallel.sink = [raw](Match&& match) { raw->OnMatch(std::move(match)); };
    SES_ASSIGN_OR_RETURN(
        exec::ParallelPartitionedMatcher matcher,
        exec::ParallelPartitionedMatcher::Create(
            engine->plan_->shared_automaton(),
            engine->plan_->partition_attribute(), std::move(parallel),
            engine->plan_->shared_prefilter()));
    engine->matcher_.emplace(std::move(matcher));
    if (const auto& filter = engine->plan_->shared_prefilter();
        filter != nullptr && filter->active()) {
      engine->ingest_filter_ = filter.get();
    }
    return std::unique_ptr<Engine>(std::move(engine));
  }

  std::string_view name() const override { return "parallel"; }

 protected:
  Status PushOrdered(const Event& event) override {
    if (ingest_filter_ != nullptr && !ingest_filter_->ShouldProcess(event)) {
      ++stats_.events_filtered;
      return Status::OK();
    }
    return matcher_->Push(event);
  }

  Status PushBatchOrdered(std::span<const Event> events) override {
    if (ingest_filter_ == nullptr) return matcher_->PushBatch(events);
    scratch_.clear();
    for (const Event& event : events) {
      if (ingest_filter_->ShouldProcess(event)) scratch_.push_back(event);
    }
    stats_.events_filtered +=
        static_cast<int64_t>(events.size() - scratch_.size());
    if (scratch_.empty()) return Status::OK();
    return matcher_->PushBatch(scratch_);
  }

  Status PushColumnarOrdered(const ColumnarBatch& batch,
                             const uint64_t* pass) override {
    // The base class already applied the vectorized pre-filter (the bitmap
    // IS this engine's ingest filter — same plan, same conditions), so the
    // sharded runtime routes straight off the columns without the row-wise
    // re-check.
    return matcher_->PushColumnar(batch, pass);
  }

  Status FlushImpl() override {
    in_flush_ = true;
    Status status = matcher_->Flush(nullptr);
    in_flush_ = false;
    const exec::ParallelStats& parallel_stats = matcher_->stats();
    stats_.max_buffered_matches = parallel_stats.max_buffered_matches;
    stats_.num_partitions = parallel_stats.partitions_created;
    stats_.partitions_evicted = parallel_stats.partitions_evicted;
    stats_.max_queue_depth = parallel_stats.max_queue_depth;
    stats_.batches_enqueued = parallel_stats.batches_enqueued;
    stats_.rebalancer = parallel_stats.rebalancer;
    return status;
  }

  void ResetImpl() override {
    matcher_->Reset();
    stats_ = EngineStats{};
  }

  EngineStats StatsImpl() const override { return stats_; }

  Status CheckpointImpl(std::string* out) override {
    SES_RETURN_IF_ERROR(matcher_->Checkpoint(out));
    storage::PutSigned(out, stats_.events_filtered);
    storage::PutSigned(out, stats_.matches_emitted);
    storage::PutSigned(out, stats_.matches_emitted_early);
    return Status::OK();
  }

  Status RestoreImpl(const char** p, const char* limit) override {
    SES_RETURN_IF_ERROR(matcher_->Restore(p, limit));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.events_filtered));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.matches_emitted));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.matches_emitted_early));
    return Status::OK();
  }

 private:
  ParallelEngine(std::shared_ptr<const plan::CompiledPlan> plan,
                 EngineOptions options)
      : Engine(std::move(plan), std::move(options)) {}

  void OnMatch(Match&& match) {
    ++stats_.matches_emitted;
    if (!in_flush_) ++stats_.matches_emitted_early;
    options_.sink(std::move(match));
  }

  std::optional<exec::ParallelPartitionedMatcher> matcher_;
  const EventPreFilter* ingest_filter_ = nullptr;
  std::vector<Event> scratch_;
  bool in_flush_ = false;
  EngineStats stats_;
};

/// "brute-force": the §5.2 union of per-ordering sequential automata,
/// reduced to the canonical SES match set. Each candidate substitution is
/// deduplicated by SubstitutionKey and replayed against the recent event
/// window with IsOperationalMatch; both the event buffer and the dedup map
/// are pruned below watermark − τ (no later automaton instance — hence no
/// later candidate — can start earlier than that).
class BruteForceEngine : public Engine {
 public:
  static Result<std::unique_ptr<Engine>> Make(
      std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options) {
    SES_ASSIGN_OR_RETURN(baseline::BruteForceMatcher matcher,
                         baseline::BruteForceMatcher::Create(
                             plan->pattern(), plan->matcher_options()));
    return std::unique_ptr<Engine>(new BruteForceEngine(
        std::move(plan), std::move(options), std::move(matcher)));
  }

  std::string_view name() const override { return "brute-force"; }

 protected:
  Status PushOrdered(const Event& event) override {
    SES_RETURN_IF_ERROR(matcher_->Push(event, &buffer_));
    // A filtered event satisfies no constant condition, so it can neither
    // be bound by a match nor extend any replay prefix — and, crucially,
    // it never reaches the underlying executors, so it does not trigger
    // their window-expiry sweep. Emission is therefore delayed until the
    // next UNFILTERED event, and only unfiltered events may advance the
    // replay buffer's prune cutoff (otherwise the buffer could drop events
    // a delayed match still needs).
    const bool visible = filter_ == nullptr || filter_->ShouldProcess(event);
    if (visible) {
      recent_.push_back(event);
    } else {
      // The internal per-ordering matchers drop the event themselves;
      // count it here so the engine's filter counter matches the other
      // engines (and the columnar path's bitmap accounting).
      ++stats_.events_filtered;
    }
    Deliver(/*early=*/true);
    if (visible) {
      const Timestamp cutoff = event.timestamp() - plan_->window();
      size_t drop = 0;
      while (drop < recent_.size() && recent_[drop].timestamp() < cutoff) {
        ++drop;
      }
      recent_.erase(recent_.begin(),
                    recent_.begin() + static_cast<long>(drop));
      std::erase_if(seen_, [&](const auto& entry) {
        return entry.second < cutoff;
      });
    }
    return Status::OK();
  }

  Status FlushImpl() override {
    matcher_->Flush(&buffer_);
    Deliver(/*early=*/false);
    return Status::OK();
  }

  void ResetImpl() override {
    // BruteForceMatcher has no Reset; rebuild the automaton bank. Creation
    // cannot fail here — the pattern was validated when the engine was.
    Result<baseline::BruteForceMatcher> rebuilt =
        baseline::BruteForceMatcher::Create(plan_->pattern(),
                                            plan_->matcher_options());
    if (rebuilt.ok()) matcher_.emplace(std::move(*rebuilt));
    buffer_.clear();
    recent_.clear();
    seen_.clear();
    stats_ = EngineStats{};
  }

  EngineStats StatsImpl() const override { return stats_; }

  Status CheckpointImpl(std::string* out) override {
    // The automaton bank itself is not serialized: every live instance
    // binds only events from the replay window `recent_` (anything older
    // has expired — the per-push window sweep flushed it), so the bank is
    // rebuilt on restore by replaying `recent_` through a fresh matcher.
    // Replay can only re-derive candidates the crashed run already judged;
    // the restored `seen_` map suppresses re-emission.
    const Schema& schema = plan_->pattern().schema();
    storage::PutCount(out, recent_.size());
    for (const Event& event : recent_) {
      storage::PutEventRecord(out, event, schema);
    }
    storage::PutCount(out, seen_.size());
    for (const auto& [key, start] : seen_) {
      storage::PutCount(out, key.size());
      for (const auto& [variable, event_id] : key) {
        storage::PutSigned(out, variable);
        storage::PutSigned(out, event_id);
      }
      storage::PutSigned(out, start);
    }
    storage::PutSigned(out, stats_.events_filtered);
    storage::PutSigned(out, stats_.matches_emitted);
    storage::PutSigned(out, stats_.matches_emitted_early);
    storage::PutSigned(out, stats_.max_buffered_matches);
    return Status::OK();
  }

  Status RestoreImpl(const char** p, const char* limit) override {
    const Schema& schema = plan_->pattern().schema();
    uint64_t num_recent = 0;
    SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_recent));
    recent_.reserve(num_recent);
    for (uint64_t i = 0; i < num_recent; ++i) {
      Event event;
      SES_RETURN_IF_ERROR(storage::GetEventRecord(p, limit, schema, &event));
      recent_.push_back(std::move(event));
    }
    uint64_t num_seen = 0;
    SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_seen));
    for (uint64_t i = 0; i < num_seen; ++i) {
      uint64_t key_size = 0;
      SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &key_size));
      std::vector<std::pair<VariableId, EventId>> key;
      key.reserve(key_size);
      for (uint64_t j = 0; j < key_size; ++j) {
        int64_t variable = 0;
        int64_t event_id = 0;
        SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &variable));
        SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &event_id));
        key.emplace_back(static_cast<VariableId>(variable),
                         static_cast<EventId>(event_id));
      }
      Timestamp start = 0;
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &start));
      seen_.emplace(std::move(key), start);
    }
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.events_filtered));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.matches_emitted));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.matches_emitted_early));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.max_buffered_matches));
    // Rebuild the automaton bank: replay the window through the fresh
    // matcher (ResetImpl rebuilt it) and discard the re-derived candidates
    // — every one of them was judged (and, if canonical, emitted) before
    // the checkpoint was taken.
    std::vector<Match> discard;
    for (const Event& event : recent_) {
      SES_RETURN_IF_ERROR(matcher_->Push(event, &discard));
      discard.clear();
    }
    return Status::OK();
  }

 private:
  BruteForceEngine(std::shared_ptr<const plan::CompiledPlan> plan,
                   EngineOptions options,
                   baseline::BruteForceMatcher matcher)
      : Engine(std::move(plan), std::move(options)) {
    matcher_.emplace(std::move(matcher));
    if (const auto& filter = plan_->shared_prefilter();
        filter != nullptr && filter->active()) {
      filter_ = filter.get();
    }
  }

  void Deliver(bool early) {
    stats_.max_buffered_matches = std::max(
        stats_.max_buffered_matches, static_cast<int64_t>(buffer_.size()));
    for (Match& match : buffer_) {
      auto key = match.SubstitutionKey();
      if (seen_.find(key) != seen_.end()) continue;
      const Timestamp start = match.start_time();
      const bool canonical = baseline::IsOperationalMatch(
          plan_->pattern(), match, std::span<const Event>(recent_));
      // Rejected candidates are remembered too: another ordering may
      // produce the same substitution and must not trigger a second replay.
      seen_.emplace(std::move(key), start);
      if (!canonical) continue;
      ++stats_.matches_emitted;
      if (early) ++stats_.matches_emitted_early;
      options_.sink(std::move(match));
    }
    buffer_.clear();
  }

  std::optional<baseline::BruteForceMatcher> matcher_;
  /// The plan's pre-filter when it is active (per-ordering patterns share
  /// the original pattern's constant conditions, so one predicate fits
  /// every internal matcher); null when inactive or disabled.
  const EventPreFilter* filter_ = nullptr;
  std::vector<Match> buffer_;
  /// All UNFILTERED stream events newer than the prune cutoff, in order —
  /// enough to replay any candidate that can still be produced.
  std::vector<Event> recent_;
  /// SubstitutionKey → start time of every candidate already judged.
  std::map<std::vector<std::pair<VariableId, EventId>>, Timestamp> seen_;
  EngineStats stats_;
};

}  // namespace

Engine::Engine(std::shared_ptr<const plan::CompiledPlan> plan,
               EngineOptions options)
    : plan_(std::move(plan)), options_(std::move(options)) {
  if (options_.lateness_bound > 0) {
    exec::ReorderOptions reorder;
    reorder.lateness_bound = options_.lateness_bound;
    reorder.late_policy = options_.late_policy;
    reorder_ = std::make_unique<exec::ReorderBuffer>(reorder);
  }
  next_checkpoint_at_ = options_.checkpoint_interval_events;
}

Status Engine::MaybeCheckpoint() {
  if (options_.checkpoint_interval_events <= 0 ||
      options_.checkpoint_sink == nullptr ||
      events_pushed_ < next_checkpoint_at_) {
    return Status::OK();
  }
  next_checkpoint_at_ = events_pushed_ + options_.checkpoint_interval_events;
  storage::CheckpointWriter writer;
  SES_RETURN_IF_ERROR(Checkpoint(&writer));
  return options_.checkpoint_sink(writer);
}

Status Engine::Checkpoint(storage::CheckpointWriter* writer) {
  std::string base;
  storage::PutString(&base, name());
  storage::PutBool(&base, flushed_);
  storage::PutBool(&base, has_last_timestamp_);
  storage::PutSigned(&base, last_timestamp_);
  storage::PutSigned(&base, events_pushed_);
  storage::PutSigned(&base, events_late_);
  storage::PutSigned(&base, events_filtered_columnar_);
  storage::PutBool(&base, reorder_ != nullptr);
  if (reorder_ != nullptr) {
    reorder_->Checkpoint(plan_->pattern().schema(), &base);
  }
  writer->AddSection("engine", base);
  std::string state;
  SES_RETURN_IF_ERROR(CheckpointImpl(&state));
  writer->AddSection("state", state);
  return Status::OK();
}

Status Engine::Restore(const storage::CheckpointReader& reader) {
  Reset();
  Status s = [&]() -> Status {
    Result<std::string_view> base = reader.Section("engine");
    if (!base.ok()) {
      return Status::Corruption(
          "checkpoint is missing the 'engine' section");
    }
    const char* p = base->data();
    const char* limit = base->data() + base->size();
    std::string engine_name;
    SES_RETURN_IF_ERROR(storage::GetString(&p, limit, &engine_name));
    if (engine_name != name()) {
      return Status::InvalidArgument("checkpoint was written by engine '" +
                                     engine_name + "', not '" +
                                     std::string(name()) + "'");
    }
    SES_RETURN_IF_ERROR(storage::GetBool(&p, limit, &flushed_));
    SES_RETURN_IF_ERROR(storage::GetBool(&p, limit, &has_last_timestamp_));
    SES_RETURN_IF_ERROR(storage::GetSigned(&p, limit, &last_timestamp_));
    SES_RETURN_IF_ERROR(storage::GetSigned(&p, limit, &events_pushed_));
    SES_RETURN_IF_ERROR(storage::GetSigned(&p, limit, &events_late_));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(&p, limit, &events_filtered_columnar_));
    bool has_reorder = false;
    SES_RETURN_IF_ERROR(storage::GetBool(&p, limit, &has_reorder));
    if (has_reorder != (reorder_ != nullptr)) {
      return Status::InvalidArgument(
          "checkpoint lateness configuration does not match this engine");
    }
    if (reorder_ != nullptr) {
      SES_RETURN_IF_ERROR(
          reorder_->Restore(plan_->pattern().schema(), &p, limit));
    }
    if (p != limit) {
      return Status::Corruption(
          "checkpoint 'engine' section has trailing bytes");
    }
    Result<std::string_view> state = reader.Section("state");
    if (!state.ok()) {
      return Status::Corruption("checkpoint is missing the 'state' section");
    }
    p = state->data();
    limit = state->data() + state->size();
    SES_RETURN_IF_ERROR(RestoreImpl(&p, limit));
    if (p != limit) {
      return Status::Corruption(
          "checkpoint 'state' section has trailing bytes");
    }
    // Resume the periodic cadence from the restored event count, aligned
    // to the interval, so a restored run checkpoints at the same event
    // offsets the uninterrupted run would have.
    if (options_.checkpoint_interval_events > 0) {
      const int64_t interval = options_.checkpoint_interval_events;
      next_checkpoint_at_ = (events_pushed_ / interval + 1) * interval;
    }
    return Status::OK();
  }();
  if (!s.ok()) Reset();
  return s;
}

Status Engine::HandleLate(const Event& event) {
  ++events_late_;
  if (options_.late_policy == exec::LatePolicy::kDrop) return Status::OK();
  return Status::InvalidArgument(
      "out-of-order event at t=" + std::to_string(event.timestamp()) +
      " (newest timestamp seen is t=" + std::to_string(last_timestamp_) +
      " and lateness_bound is 0)");
}

Status Engine::Push(const Event& event) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "Push after Flush: call Reset() before pushing a new stream");
  }
  ++events_pushed_;
  if (reorder_ != nullptr) {
    released_.clear();
    Status status = reorder_->Push(event, &released_);
    if (!released_.empty()) {
      SES_RETURN_IF_ERROR(PushBatchOrdered(released_));
    }
    SES_RETURN_IF_ERROR(status);
    return MaybeCheckpoint();
  }
  if (has_last_timestamp_ && event.timestamp() <= last_timestamp_) {
    return HandleLate(event);
  }
  last_timestamp_ = event.timestamp();
  has_last_timestamp_ = true;
  SES_RETURN_IF_ERROR(PushOrdered(event));
  return MaybeCheckpoint();
}

Status Engine::PushBatch(std::span<const Event> events) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "PushBatch after Flush: call Reset() before pushing a new stream");
  }
  events_pushed_ += static_cast<int64_t>(events.size());
  SES_RETURN_IF_ERROR(IngestSpan(events));
  return MaybeCheckpoint();
}

Status Engine::IngestSpan(std::span<const Event> events) {
  if (reorder_ != nullptr) {
    released_.clear();
    Status status = reorder_->PushBatch(events, &released_);
    if (!released_.empty()) {
      SES_RETURN_IF_ERROR(PushBatchOrdered(released_));
    }
    return status;
  }
  // lateness_bound == 0: verify the span continues the strictly increasing
  // stream, then hand it to the engine without copying.
  size_t ordered = 0;
  Timestamp last = last_timestamp_;
  bool has_last = has_last_timestamp_;
  while (ordered < events.size()) {
    const Timestamp ts = events[ordered].timestamp();
    if (has_last && ts <= last) break;
    last = ts;
    has_last = true;
    ++ordered;
  }
  if (ordered == events.size()) {
    last_timestamp_ = last;
    has_last_timestamp_ = has_last;
    return PushBatchOrdered(events);
  }
  if (options_.late_policy == exec::LatePolicy::kReject) {
    // Deliver the in-order prefix, then fail on the violating event.
    if (ordered > 0) {
      last_timestamp_ = last;
      has_last_timestamp_ = true;
      SES_RETURN_IF_ERROR(PushBatchOrdered(events.subspan(0, ordered)));
    }
    return HandleLate(events[ordered]);
  }
  // kDrop: filter the violators out and deliver the in-order remainder.
  released_.clear();
  released_.reserve(events.size());
  for (const Event& event : events) {
    if (has_last_timestamp_ && event.timestamp() <= last_timestamp_) {
      ++events_late_;
      continue;
    }
    last_timestamp_ = event.timestamp();
    has_last_timestamp_ = true;
    released_.push_back(event);
  }
  if (released_.empty()) return Status::OK();
  return PushBatchOrdered(released_);
}

Status Engine::PushColumnar(const ColumnarBatch& batch) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "PushColumnar after Flush: call Reset() before pushing a new stream");
  }
  events_pushed_ += static_cast<int64_t>(batch.size());
  if (batch.empty()) return Status::OK();
  const std::vector<Timestamp>& timestamps = batch.timestamps();
  bool in_order = reorder_ == nullptr;
  if (in_order) {
    Timestamp last = last_timestamp_;
    bool has_last = has_last_timestamp_;
    for (Timestamp ts : timestamps) {
      if (has_last && ts <= last) {
        in_order = false;
        break;
      }
      last = ts;
      has_last = true;
    }
  }
  if (!in_order) {
    // Reorder stage engaged, or the batch violates strict ordering:
    // materialize the rows and reuse the row-wise lateness machinery, so
    // the two ingest paths agree on every reject/drop decision.
    std::vector<Event> rows = batch.ToEvents();
    SES_RETURN_IF_ERROR(IngestSpan(rows));
    return MaybeCheckpoint();
  }
  last_timestamp_ = timestamps.back();
  has_last_timestamp_ = true;
  const uint64_t* pass = nullptr;
  if (const auto& filter = plan_->shared_vector_prefilter();
      filter != nullptr && filter->active()) {
    filter->EvaluateAny(batch, &pass_words_);
    pass = pass_words_.data();
    size_t passing = 0;
    for (uint64_t word : pass_words_) passing += std::popcount(word);
    events_filtered_columnar_ +=
        static_cast<int64_t>(batch.size() - passing);
  }
  SES_RETURN_IF_ERROR(PushColumnarOrdered(batch, pass));
  return MaybeCheckpoint();
}

Status Engine::PushColumnarOrdered(const ColumnarBatch& batch,
                                   const uint64_t* pass) {
  columnar_rows_.clear();
  for (size_t row = 0; row < batch.size(); ++row) {
    if (pass != nullptr && ((pass[row >> 6] >> (row & 63)) & 1) == 0) {
      continue;
    }
    columnar_rows_.push_back(batch.RowEvent(row));
  }
  if (columnar_rows_.empty()) return Status::OK();
  return PushBatchOrdered(columnar_rows_);
}

Status Engine::Flush() {
  if (reorder_ != nullptr && !flushed_) {
    released_.clear();
    Status status = reorder_->Flush(&released_);
    if (!released_.empty()) {
      SES_RETURN_IF_ERROR(PushBatchOrdered(released_));
    }
    SES_RETURN_IF_ERROR(status);
  }
  flushed_ = true;
  return FlushImpl();
}

void Engine::Reset() {
  if (reorder_ != nullptr) reorder_->Reset();
  released_.clear();
  has_last_timestamp_ = false;
  last_timestamp_ = 0;
  flushed_ = false;
  events_pushed_ = 0;
  events_late_ = 0;
  events_filtered_columnar_ = 0;
  next_checkpoint_at_ = options_.checkpoint_interval_events;
  ResetImpl();
}

EngineStats Engine::stats() const {
  EngineStats stats = StatsImpl();
  stats.events_pushed = events_pushed_;
  stats.events_filtered += events_filtered_columnar_;
  if (reorder_ != nullptr) {
    const exec::ReorderStats& reorder = reorder_->stats();
    stats.events_reordered = reorder.events_reordered;
    stats.events_late = reorder.events_late;
    stats.max_reorder_buffered = reorder.max_buffered;
  } else {
    stats.events_reordered = 0;
    stats.events_late = events_late_;
    stats.max_reorder_buffered = 0;
  }
  return stats;
}

Status Engine::PushBatchOrdered(std::span<const Event> events) {
  for (const Event& event : events) {
    SES_RETURN_IF_ERROR(PushOrdered(event));
  }
  return Status::OK();
}

MatchSink CollectInto(std::vector<Match>* out) {
  return [out](Match&& match) { out->push_back(std::move(match)); };
}

std::vector<std::pair<std::string, int64_t>> EngineCounters(
    const EngineStats& stats) {
  return {
      {"events_pushed", stats.events_pushed},
      {"matches_emitted", stats.matches_emitted},
      {"matches_emitted_early", stats.matches_emitted_early},
      {"max_buffered_matches", stats.max_buffered_matches},
      {"num_partitions", stats.num_partitions},
      {"events_filtered", stats.events_filtered},
      {"instances_created", stats.instances_created},
      {"instances_pruned", stats.instances_pruned},
      {"max_simultaneous_instances", stats.max_simultaneous_instances},
      {"partitions_evicted", stats.partitions_evicted},
      {"max_queue_depth", stats.max_queue_depth},
      {"batches_enqueued", stats.batches_enqueued},
      {"events_reordered", stats.events_reordered},
      {"events_late", stats.events_late},
      {"max_reorder_buffered", stats.max_reorder_buffered},
  };
}

Result<std::unique_ptr<Engine>> CreateSerialEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options) {
  SES_RETURN_IF_ERROR(ValidateSink(options));
  return std::unique_ptr<Engine>(
      new SerialEngine(std::move(plan), std::move(options)));
}

Result<std::unique_ptr<Engine>> CreatePartitionedEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options) {
  SES_RETURN_IF_ERROR(ValidateSink(options));
  SES_RETURN_IF_ERROR(RequirePartitionAttribute(*plan, "partitioned"));
  SES_ASSIGN_OR_RETURN(
      PartitionedMatcher matcher,
      PartitionedMatcher::Create(plan->shared_automaton(),
                                 plan->partition_attribute(),
                                 plan->matcher_options(),
                                 plan->shared_prefilter()));
  return std::unique_ptr<Engine>(new PartitionedEngine(
      std::move(plan), std::move(options), std::move(matcher)));
}

Result<std::unique_ptr<Engine>> CreateParallelEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options) {
  SES_RETURN_IF_ERROR(ValidateSink(options));
  SES_RETURN_IF_ERROR(RequirePartitionAttribute(*plan, "parallel"));
  return ParallelEngine::Make(std::move(plan), std::move(options));
}

Result<std::unique_ptr<Engine>> CreateBruteForceEngine(
    std::shared_ptr<const plan::CompiledPlan> plan, EngineOptions options) {
  SES_RETURN_IF_ERROR(ValidateSink(options));
  return BruteForceEngine::Make(std::move(plan), std::move(options));
}

}  // namespace ses::engine
