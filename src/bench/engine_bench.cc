#include "bench/engine_bench.h"

#include <span>
#include <utility>

#include "common/logging.h"

namespace ses::bench {

Result<EngineCaseOutput> RunEngineCase(
    const Harness& harness, const std::string& case_name,
    std::shared_ptr<const plan::CompiledPlan> plan,
    const EventRelation& stream, EngineCaseConfig config) {
  auto output = std::make_unique<EngineCaseOutput>();
  EngineCaseOutput* out = output.get();

  // The probe-wrapped sink is installed once at engine creation; the probe
  // outlives the engine because both live until this function returns.
  LatencyProbe* probe = nullptr;
  engine::EngineOptions options = std::move(config.options);
  // Bound sink: filled in per run via the shared collector pointer.
  options.sink = [out](Match&& match) {
    out->matches.push_back(std::move(match));
  };
  // Wrap lazily below — the probe belongs to the harness case run. Engine
  // creation needs a sink now, so wrap a trampoline that defers to the
  // currently-installed probe sink.
  MatchSink collect = std::move(options.sink);
  MatchSink probed;  // rebuilt per case once the probe is known
  options.sink = [&probed, &collect](Match&& match) {
    if (probed) {
      probed(std::move(match));
    } else {
      collect(std::move(match));
    }
  };

  SES_ASSIGN_OR_RETURN(
      std::unique_ptr<engine::Engine> engine,
      engine::CreateEngine(config.engine, std::move(plan), std::move(options)));

  const std::span<const Event> events(stream.events());
  const size_t chunk = config.push_batch == 0 ? events.size()
                                              : config.push_batch;
  Status run_status = Status::OK();
  CaseResult result = harness.Run(case_name, static_cast<int64_t>(
                                                 stream.size()),
                                  [&](CaseRun& run) {
    if (!run_status.ok()) return;  // fail fast across remaining runs
    if (probe != &run.latency()) {
      probe = &run.latency();
      probed = probe->Wrap(collect);
    }
    engine->Reset();
    out->matches.clear();
    for (size_t offset = 0; offset < events.size(); offset += chunk) {
      const size_t n = std::min(chunk, events.size() - offset);
      const std::span<const Event> batch = events.subspan(offset, n);
      for (const Event& event : batch) {
        run.latency().RecordIngest(event.timestamp());
      }
      run_status = engine->PushBatch(batch);
      if (!run_status.ok()) return;
    }
    run_status = engine->Flush();
    if (!run_status.ok()) return;
    out->stats = engine->stats();
    run.SetCounter("events", out->stats.events_pushed, /*exact=*/true);
    run.SetCounter("matches", out->stats.matches_emitted, /*exact=*/true);
    for (const auto& [name, value] : engine::EngineCounters(out->stats)) {
      if (name == "events_pushed" || name == "matches_emitted") continue;
      run.SetCounter(name, value);
    }
  });
  SES_RETURN_IF_ERROR(run_status);
  out->result = std::move(result);
  return std::move(*output);
}

}  // namespace ses::bench
