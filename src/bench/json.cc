#include "bench/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ses::bench {

namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

/// Recursive-descent parser over a string_view with a position cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SES_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " +
                              std::string(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      SES_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    if (ConsumeLiteral("null")) return Json();
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json object = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      SES_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SES_ASSIGN_OR_RETURN(Json value, ParseValue());
      object[key] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json array = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      SES_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // The harness only emits \u escapes for control characters, so
          // non-ASCII code points are encoded as UTF-8 here without
          // surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integer = true;
    if (Consume('.')) {
      integer = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("invalid number");
    if (integer) {
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(value));
      }
    }
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::DumpTo(std::string* out, int depth) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber: {
      if (is_integer_) {
        out->append(std::to_string(int_));
      } else if (!std::isfinite(number_)) {
        // JSON has no Infinity/NaN; emit null rather than invalid output.
        out->append("null");
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        // Trim to the shortest representation that still round-trips.
        for (int precision = 1; precision < 17; ++precision) {
          char shorter[40];
          std::snprintf(shorter, sizeof(shorter), "%.*g", precision, number_);
          if (std::strtod(shorter, nullptr) == number_) {
            std::snprintf(buf, sizeof(buf), "%s", shorter);
            break;
          }
        }
        out->append(buf);
      }
      break;
    }
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->append("[\n");
      for (size_t i = 0; i < array_.size(); ++i) {
        AppendIndent(depth + 1, out);
        array_[i].DumpTo(out, depth + 1);
        if (i + 1 < array_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(depth, out);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out->append("{}");
        break;
      }
      out->append("{\n");
      for (size_t i = 0; i < members_.size(); ++i) {
        AppendIndent(depth + 1, out);
        AppendEscaped(members_[i].first, out);
        out->append(": ");
        members_[i].second.DumpTo(out, depth + 1);
        if (i + 1 < members_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(depth, out);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace ses::bench
