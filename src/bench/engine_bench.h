#ifndef SES_BENCH_ENGINE_BENCH_H_
#define SES_BENCH_ENGINE_BENCH_H_

// Harness adapter for the engine layer: drives any registered engine over a
// stream under the Harness cadence (warmup, repeated runs via Reset,
// steady-state detection), measures per-match emission latency through the
// MatchSink, and folds the engine's counter snapshot (EngineCounters) into
// the case record. bench/engine_compare and bench/partition_ablation both
// report through this, so their numbers are directly comparable.

#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "engine/registry.h"
#include "event/relation.h"
#include "plan/compiled_plan.h"

namespace ses::bench {

/// How one engine case is driven.
struct EngineCaseConfig {
  /// Registry name ("serial", "partitioned", "parallel", "brute-force").
  std::string engine;
  /// Runtime knobs; the sink is replaced by the harness's probed collector.
  engine::EngineOptions options;
  /// Events per PushBatch call; 0 pushes the whole stream as one span. A
  /// streaming-realistic chunk (e.g. 1024) keeps the parallel engine's
  /// incremental-emission path exercised between calls.
  size_t push_batch = 1024;
};

/// Case record plus the artifacts the identity checks need.
struct EngineCaseOutput {
  CaseResult result;
  /// Engine stats snapshot of the last timed run.
  engine::EngineStats stats;
  /// Matches of the last timed run (delivery order, unsorted).
  std::vector<Match> matches;
};

/// Measures `config.engine` executing `plan` over `stream`. The engine is
/// created once and Reset() between runs. Counters folded into the case:
/// "matches" and "events" (exact — deterministic for every engine),
/// plus every EngineCounters entry as informational values. Errors from
/// engine creation (e.g. a partition-pure engine on a plan without a
/// partition attribute) are returned, not measured.
Result<EngineCaseOutput> RunEngineCase(
    const Harness& harness, const std::string& case_name,
    std::shared_ptr<const plan::CompiledPlan> plan,
    const EventRelation& stream, EngineCaseConfig config);

}  // namespace ses::bench

#endif  // SES_BENCH_ENGINE_BENCH_H_
