#ifndef SES_BENCH_JSON_H_
#define SES_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ses::bench {

/// A minimal JSON document model for the benchmark harness: enough to emit
/// the BENCH_*.json result schema (see bench/harness.h) and to read it back
/// in tools/bench_compare — not a general-purpose JSON library. Objects
/// preserve insertion order so emitted documents diff cleanly; integers are
/// kept exact through a Dump/Parse round trip (doubles round-trip through
/// a shortest-representation %.17g rendering). No external dependencies.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : Json(static_cast<int64_t>(value)) {}
  Json(int64_t value)
      : type_(Type::kNumber), is_integer_(true), int_(value),
        number_(static_cast<double>(value)) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json Array() { return Json(Type::kArray); }
  static Json Object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  /// True for numbers written without a fraction or exponent that fit
  /// int64; such numbers round-trip exactly.
  bool is_integer() const { return is_number() && is_integer_; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const {
    return is_integer_ ? int_ : static_cast<int64_t>(number_);
  }
  const std::string& string_value() const { return string_; }

  /// Array element count / object member count; 0 for scalars.
  size_t size() const {
    return is_array() ? array_.size() : is_object() ? members_.size() : 0;
  }
  const Json& at(size_t index) const { return array_[index]; }
  void Append(Json value) { array_.push_back(std::move(value)); }

  /// Object access: inserts a null member when `key` is absent (the node
  /// must be an object or null — a null node becomes an object, which makes
  /// `doc["a"]["b"] = 1` work on a default-constructed document).
  Json& operator[](std::string_view key);
  /// Read-only lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes with 2-space indentation and a trailing newline at the top
  /// level; `indent` is the current nesting depth.
  std::string Dump() const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<Json> Parse(std::string_view text);

 private:
  explicit Json(Type type) : type_(type) {}
  void DumpTo(std::string* out, int depth) const;

  Type type_;
  bool bool_ = false;
  bool is_integer_ = false;
  int64_t int_ = 0;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ses::bench

#endif  // SES_BENCH_JSON_H_
