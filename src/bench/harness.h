#ifndef SES_BENCH_HARNESS_H_
#define SES_BENCH_HARNESS_H_

// Benchmark harness: repeated timed runs with warmup, steady-state
// detection, latency percentiles measured through engine::MatchSink, and a
// machine-readable result record. Every binary under bench/ reports through
// this harness so numbers are comparable across binaries and across
// commits; tools/bench_compare consumes the emitted JSON to gate CI on perf
// regressions.
//
// Result schema (BENCH_<name>.json, schema_version 1):
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",                   // e.g. "engines", "partition"
//     "git_sha": "<sha or 'unknown'>",
//     "timestamp": "<UTC ISO-8601>",
//     "host": {"hostname", "os", "arch", "hardware_threads"},
//     "cases": [{
//       "name": "<sweep>/<case>",          // unique within the file
//       "items": <events per run>,
//       "warmup_runs": N, "timed_runs": N,
//       "steady_state": bool,              // CV cutoff reached
//       "wall_seconds": {"mean","min","max","stddev","cv"},
//       "cpu_seconds":  {"mean","min","max","stddev","cv"},
//       "events_per_sec": <items / mean wall seconds>,
//       "latency_ns": {"count","p50","p95","p99","max"},  // sink-measured;
//                                          // count 0 when not collected
//       "peak_rss_kb": <ru_maxrss after the case>,
//       "counters": {"matches": ..., ...}, // bench-specific int counters
//       "exact": ["matches", ...]          // counters bench_compare gates
//     }, ...]                              // on exact equality
//   }

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/json.h"
#include "common/time.h"
#include "core/match.h"

namespace ses::bench {

/// Aggregate statistics over one sample set (the per-run wall/CPU times).
struct SampleStats {
  int64_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv = 0;
};

/// Mean / min / max / stddev / CV of `samples` (population stddev).
SampleStats Summarize(const std::vector<double>& samples);

/// Quantile `q` in [0, 1] by linear interpolation between closest ranks
/// (the "R-7" definition, also numpy's default). `samples` need not be
/// sorted; returns 0 on an empty set.
double Quantile(std::vector<double> samples, double q);

/// Percentile summary of per-match emission latencies, in nanoseconds.
struct LatencyStats {
  int64_t count = 0;
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
};

/// Measures per-match emission latency through engine::MatchSink: the wall
/// time between the ingest of the stream event that completed a match (the
/// event at Match::end_time()) and the sink delivering that match. This is
/// the delay the watermark-bounded incremental emission path bounds — NOT
/// the wall clock of the whole run.
///
/// Usage: call RecordIngest(event.timestamp()) immediately before pushing
/// each event (for PushBatch, record the whole span first — the batch is
/// handed over at one wall instant), and wrap the terminal sink with
/// Wrap(). One probe serves many runs: BeginRun() clears the per-run ingest
/// log while latency samples pool across timed runs; samples recorded
/// during warmup runs are dropped.
class LatencyProbe {
 public:
  /// `now_ns` overrides the monotonic clock (tests inject a fake clock);
  /// default is steady_clock nanoseconds.
  explicit LatencyProbe(std::function<int64_t()> now_ns = {});

  /// Starts a run: clears the ingest log; samples recorded while
  /// `collect` is false are discarded (warmup).
  void BeginRun(bool collect);

  /// Logs the ingest wall time of the event with timestamp `event_time`.
  /// Event times must be recorded in nondecreasing order (stream order).
  void RecordIngest(Timestamp event_time);

  /// Wraps `inner`: records the emission latency of every match, then
  /// forwards it. The returned sink references this probe (not owned).
  MatchSink Wrap(MatchSink inner);

  LatencyStats Snapshot() const;
  int64_t sample_count() const {
    return static_cast<int64_t>(latencies_ns_.size());
  }
  void Reset();

 private:
  std::function<int64_t()> now_ns_;
  bool collect_ = true;
  /// (event timestamp, ingest wall ns), in stream order — binary-searched
  /// by Match::end_time() on delivery.
  std::vector<std::pair<Timestamp, int64_t>> ingest_;
  std::vector<double> latencies_ns_;
};

/// Cadence of a measured case: how many runs, and when the run set counts
/// as steady state.
struct HarnessOptions {
  /// Untimed runs before measurement starts (cache/allocator warmup).
  int warmup_runs = 1;
  /// Timed runs always performed.
  int min_runs = 3;
  /// Upper bound on timed runs when steady state is not reached.
  int max_runs = 8;
  /// Steady state: the coefficient of variation of the timed wall times is
  /// at or below this after at least min_runs.
  double cv_cutoff = 0.05;
};

/// Everything measured for one benchmark case; serialized by BenchReport
/// into the schema documented at the top of this header.
struct CaseResult {
  std::string name;
  int64_t items = 0;
  int warmup_runs = 0;
  int timed_runs = 0;
  bool steady_state = false;
  SampleStats wall_seconds;
  SampleStats cpu_seconds;
  double events_per_sec = 0;
  LatencyStats latency;
  int64_t peak_rss_kb = 0;
  /// Bench-specific counters, in insertion order (last run wins).
  std::vector<std::pair<std::string, int64_t>> counters;
  /// Names of counters that are deterministic for this case —
  /// tools/bench_compare fails the comparison when they differ at all.
  std::vector<std::string> exact;

  /// Value of a counter, or `fallback` when absent.
  int64_t counter(std::string_view name, int64_t fallback = 0) const;
};

/// Per-run context handed to the case body.
class CaseRun {
 public:
  bool warmup() const { return warmup_; }
  /// 0-based index within warmup runs resp. timed runs.
  int run_index() const { return index_; }
  /// The case's latency probe; per-run lifecycle is managed by the harness.
  LatencyProbe& latency() { return *probe_; }
  /// Records a counter on the case (deterministic bodies overwrite the same
  /// value each run). `exact` marks the counter for exact-equality gating
  /// in tools/bench_compare; use it for values that must not drift
  /// (match counts), not for timing-dependent ones (queue depths).
  void SetCounter(const std::string& name, int64_t value, bool exact = false);

 private:
  friend class Harness;
  CaseRun(bool warmup, int index, LatencyProbe* probe, CaseResult* result)
      : warmup_(warmup), index_(index), probe_(probe), result_(result) {}
  bool warmup_;
  int index_;
  LatencyProbe* probe_;
  CaseResult* result_;
};

/// Runs case bodies under a fixed cadence: `warmup_runs` untimed runs, then
/// timed runs until the wall-time CV drops to `cv_cutoff` (or `max_runs` is
/// hit), recording wall + CPU time per run, pooled sink latencies, peak
/// RSS, and the body's counters.
class Harness {
 public:
  explicit Harness(HarnessOptions options = {}) : options_(options) {}

  /// Measures one case. The body must perform exactly one complete,
  /// repeatable run (engines: Reset + push stream + Flush).
  CaseResult Run(const std::string& name, int64_t items,
                 const std::function<void(CaseRun&)>& body) const;

  /// One-shot variant: no warmup, a single timed run. For deterministic
  /// counter experiments (instance counts, theorem bounds) where
  /// repetition adds cost but no information.
  CaseResult RunOnce(const std::string& name, int64_t items,
                     const std::function<void(CaseRun&)>& body) const;

  const HarnessOptions& options() const { return options_; }

 private:
  CaseResult RunWith(const HarnessOptions& options, const std::string& name,
                     int64_t items,
                     const std::function<void(CaseRun&)>& body) const;

  HarnessOptions options_;
};

/// CPU seconds consumed by the whole process (user + system, all threads).
double ProcessCpuSeconds();

/// Peak resident set size of the process in KiB (ru_maxrss). Monotone over
/// the process lifetime, so per-case values reflect "peak so far".
int64_t PeakRssKb();

/// Host identity recorded in every report.
struct HostInfo {
  std::string hostname;
  std::string os;
  std::string arch;
  int hardware_threads = 0;
};
HostInfo QueryHostInfo();

/// Git SHA recorded in every report: $SES_GIT_SHA when set (CI), else
/// `git rev-parse --short=12 HEAD`, else "unknown".
std::string QueryGitSha();

/// Collects CaseResults and serializes the documented schema.
class BenchReport {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(CaseResult result) { cases_.push_back(std::move(result)); }
  const std::vector<CaseResult>& cases() const { return cases_; }
  const std::string& bench_name() const { return bench_name_; }

  Json ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<CaseResult> cases_;
};

}  // namespace ses::bench

#endif  // SES_BENCH_HARNESS_H_
