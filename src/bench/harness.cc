#include "bench/harness.h"

#include <sys/resource.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

namespace ses::bench {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json ToJson(const SampleStats& stats) {
  Json out = Json::Object();
  out["mean"] = Json(stats.mean);
  out["min"] = Json(stats.min);
  out["max"] = Json(stats.max);
  out["stddev"] = Json(stats.stddev);
  out["cv"] = Json(stats.cv);
  return out;
}

Json ToJson(const LatencyStats& stats) {
  Json out = Json::Object();
  out["count"] = Json(stats.count);
  out["p50"] = Json(stats.p50_ns);
  out["p95"] = Json(stats.p95_ns);
  out["p99"] = Json(stats.p99_ns);
  out["max"] = Json(stats.max_ns);
  return out;
}

}  // namespace

SampleStats Summarize(const std::vector<double>& samples) {
  SampleStats stats;
  stats.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return stats;
  stats.min = samples[0];
  stats.max = samples[0];
  double sum = 0;
  for (double s : samples) {
    sum += s;
    stats.min = std::min(stats.min, s);
    stats.max = std::max(stats.max, s);
  }
  stats.mean = sum / static_cast<double>(samples.size());
  double variance = 0;
  for (double s : samples) {
    variance += (s - stats.mean) * (s - stats.mean);
  }
  variance /= static_cast<double>(samples.size());
  stats.stddev = std::sqrt(variance);
  stats.cv = stats.mean != 0 ? stats.stddev / stats.mean : 0;
  return stats;
}

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

LatencyProbe::LatencyProbe(std::function<int64_t()> now_ns)
    : now_ns_(now_ns ? std::move(now_ns) : SteadyNowNs) {}

void LatencyProbe::BeginRun(bool collect) {
  collect_ = collect;
  ingest_.clear();
}

void LatencyProbe::RecordIngest(Timestamp event_time) {
  ingest_.emplace_back(event_time, now_ns_());
}

MatchSink LatencyProbe::Wrap(MatchSink inner) {
  return [this, inner = std::move(inner)](Match&& match) {
    if (collect_ && !ingest_.empty()) {
      // The completing event is the one at end_time(); timestamps are
      // strictly increasing, so the binary search hits it exactly. A match
      // can never outrun its own completing event, so the entry exists.
      auto it = std::lower_bound(
          ingest_.begin(), ingest_.end(), match.end_time(),
          [](const auto& entry, Timestamp t) { return entry.first < t; });
      if (it != ingest_.end()) {
        latencies_ns_.push_back(static_cast<double>(now_ns_() - it->second));
      }
    }
    if (inner) inner(std::move(match));
  };
}

LatencyStats LatencyProbe::Snapshot() const {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(latencies_ns_.size());
  if (latencies_ns_.empty()) return stats;
  stats.p50_ns = Quantile(latencies_ns_, 0.50);
  stats.p95_ns = Quantile(latencies_ns_, 0.95);
  stats.p99_ns = Quantile(latencies_ns_, 0.99);
  stats.max_ns = *std::max_element(latencies_ns_.begin(), latencies_ns_.end());
  return stats;
}

void LatencyProbe::Reset() {
  ingest_.clear();
  latencies_ns_.clear();
  collect_ = true;
}

int64_t CaseResult::counter(std::string_view name, int64_t fallback) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return fallback;
}

void CaseRun::SetCounter(const std::string& name, int64_t value, bool exact) {
  for (auto& [counter_name, counter_value] : result_->counters) {
    if (counter_name == name) {
      counter_value = value;
      return;
    }
  }
  result_->counters.emplace_back(name, value);
  if (exact) result_->exact.push_back(name);
}

CaseResult Harness::Run(const std::string& name, int64_t items,
                        const std::function<void(CaseRun&)>& body) const {
  return RunWith(options_, name, items, body);
}

CaseResult Harness::RunOnce(const std::string& name, int64_t items,
                            const std::function<void(CaseRun&)>& body) const {
  HarnessOptions once;
  once.warmup_runs = 0;
  once.min_runs = 1;
  once.max_runs = 1;
  once.cv_cutoff = options_.cv_cutoff;
  return RunWith(once, name, items, body);
}

CaseResult Harness::RunWith(const HarnessOptions& options,
                            const std::string& name, int64_t items,
                            const std::function<void(CaseRun&)>& body) const {
  CaseResult result;
  result.name = name;
  result.items = items;
  result.warmup_runs = options.warmup_runs;
  LatencyProbe probe;

  for (int i = 0; i < options.warmup_runs; ++i) {
    probe.BeginRun(/*collect=*/false);
    CaseRun run(/*warmup=*/true, i, &probe, &result);
    body(run);
  }

  std::vector<double> wall;
  std::vector<double> cpu;
  const int min_runs = std::max(1, options.min_runs);
  const int max_runs = std::max(min_runs, options.max_runs);
  for (int i = 0; i < max_runs; ++i) {
    probe.BeginRun(/*collect=*/true);
    CaseRun run(/*warmup=*/false, i, &probe, &result);
    const double cpu_before = ProcessCpuSeconds();
    const int64_t wall_before = SteadyNowNs();
    body(run);
    wall.push_back(static_cast<double>(SteadyNowNs() - wall_before) * 1e-9);
    cpu.push_back(ProcessCpuSeconds() - cpu_before);
    if (static_cast<int>(wall.size()) >= min_runs &&
        Summarize(wall).cv <= options.cv_cutoff) {
      result.steady_state = true;
      break;
    }
  }
  result.timed_runs = static_cast<int>(wall.size());
  result.wall_seconds = Summarize(wall);
  result.cpu_seconds = Summarize(cpu);
  result.events_per_sec =
      result.wall_seconds.mean > 0 && items > 0
          ? static_cast<double>(items) / result.wall_seconds.mean
          : 0;
  result.latency = probe.Snapshot();
  result.peak_rss_kb = PeakRssKb();
  return result;
}

double ProcessCpuSeconds() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  auto seconds = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

int64_t PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);
}

HostInfo QueryHostInfo() {
  HostInfo info;
  struct utsname uts;
  if (uname(&uts) == 0) {
    info.hostname = uts.nodename;
    info.os = std::string(uts.sysname) + " " + uts.release;
    info.arch = uts.machine;
  }
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

std::string QueryGitSha() {
  if (const char* sha = std::getenv("SES_GIT_SHA");
      sha != nullptr && *sha != '\0') {
    return sha;
  }
  FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (!sha.empty()) return sha;
  }
  return "unknown";
}

Json BenchReport::ToJson() const {
  Json doc = Json::Object();
  doc["schema_version"] = Json(kSchemaVersion);
  doc["bench"] = Json(bench_name_);
  doc["git_sha"] = Json(QueryGitSha());
  char timestamp[32] = "unknown";
  std::time_t now = std::time(nullptr);
  struct tm utc;
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  doc["timestamp"] = Json(timestamp);
  HostInfo host = QueryHostInfo();
  Json& host_json = doc["host"];
  host_json["hostname"] = Json(host.hostname);
  host_json["os"] = Json(host.os);
  host_json["arch"] = Json(host.arch);
  host_json["hardware_threads"] = Json(host.hardware_threads);
  Json cases = Json::Array();
  for (const CaseResult& result : cases_) {
    Json entry = Json::Object();
    entry["name"] = Json(result.name);
    entry["items"] = Json(result.items);
    entry["warmup_runs"] = Json(result.warmup_runs);
    entry["timed_runs"] = Json(result.timed_runs);
    entry["steady_state"] = Json(result.steady_state);
    entry["wall_seconds"] = ses::bench::ToJson(result.wall_seconds);
    entry["cpu_seconds"] = ses::bench::ToJson(result.cpu_seconds);
    entry["events_per_sec"] = Json(result.events_per_sec);
    entry["latency_ns"] = ses::bench::ToJson(result.latency);
    entry["peak_rss_kb"] = Json(result.peak_rss_kb);
    Json& counters = entry["counters"];
    counters = Json::Object();
    for (const auto& [name, value] : result.counters) {
      counters[name] = Json(value);
    }
    Json exact = Json::Array();
    for (const std::string& name : result.exact) exact.Append(Json(name));
    entry["exact"] = std::move(exact);
    cases.Append(std::move(entry));
  }
  doc["cases"] = std::move(cases);
  return doc;
}

Status BenchReport::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson().Dump();
  out.close();
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

}  // namespace ses::bench
