#include "bench/compare.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench/harness.h"

namespace ses::bench {

namespace {

const char* VerdictLabel(CaseVerdict verdict) {
  switch (verdict) {
    case CaseVerdict::kPass:
      return "pass";
    case CaseVerdict::kImprove:
      return "improve";
    case CaseVerdict::kRegress:
      return "REGRESS";
    case CaseVerdict::kMissingBaseline:
      return "new";
    case CaseVerdict::kMissingCandidate:
      return "MISSING";
  }
  return "?";
}

double NumberAt(const Json& node, std::string_view key, double fallback = 0) {
  const Json* value = node.Find(key);
  return value != nullptr && value->is_number() ? value->number_value()
                                                : fallback;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4fs", seconds);
  return buf;
}

std::string FormatRatio(double ratio) {
  if (ratio == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", (ratio - 1.0) * 100.0);
  return buf;
}

/// Ratio-gated timing metric: fills a MetricDelta and returns it.
MetricDelta RatioMetric(std::string metric, double baseline, double candidate,
                        double regress_above, double improve_below) {
  MetricDelta delta;
  delta.metric = std::move(metric);
  delta.baseline = baseline;
  delta.candidate = candidate;
  delta.ratio = baseline != 0 ? candidate / baseline : 0;
  if (baseline > 0 && candidate > 0) {
    if (regress_above > 0 && delta.ratio > regress_above) {
      delta.regressed = true;
    }
    if (improve_below > 0 && delta.ratio < improve_below) {
      delta.improved = true;
    }
  }
  return delta;
}

/// Inverse-gated metric (throughput): regression when the ratio FALLS below
/// the threshold.
MetricDelta ThroughputMetric(double baseline, double candidate,
                             double regress_below, double improve_above) {
  MetricDelta delta;
  delta.metric = "events_per_sec";
  delta.baseline = baseline;
  delta.candidate = candidate;
  delta.ratio = baseline != 0 ? candidate / baseline : 0;
  if (baseline > 0 && candidate > 0) {
    if (delta.ratio < regress_below) delta.regressed = true;
    if (delta.ratio > improve_above) delta.improved = true;
  }
  return delta;
}

CaseDelta CompareCase(const std::string& name, const Json& base,
                      const Json& cand, const CompareThresholds& thresholds) {
  CaseDelta delta;
  delta.name = name;

  const Json* base_wall = base.Find("wall_seconds");
  const Json* cand_wall = cand.Find("wall_seconds");
  // The gated wall metric is the MIN across runs (see CompareThresholds);
  // the mean rides along ungated for the report table.
  delta.metrics.push_back(RatioMetric(
      "wall_seconds.min",
      base_wall != nullptr ? NumberAt(*base_wall, "min") : 0,
      cand_wall != nullptr ? NumberAt(*cand_wall, "min") : 0,
      thresholds.wall_ratio, thresholds.improve_ratio));
  delta.metrics.push_back(RatioMetric(
      "wall_seconds.mean",
      base_wall != nullptr ? NumberAt(*base_wall, "mean") : 0,
      cand_wall != nullptr ? NumberAt(*cand_wall, "mean") : 0,
      /*regress_above=*/0, /*improve_below=*/0));
  delta.metrics.push_back(ThroughputMetric(
      NumberAt(base, "events_per_sec"), NumberAt(cand, "events_per_sec"),
      thresholds.throughput_ratio, 1.0 / thresholds.improve_ratio));

  const Json* base_latency = base.Find("latency_ns");
  const Json* cand_latency = cand.Find("latency_ns");
  if (base_latency != nullptr && cand_latency != nullptr &&
      NumberAt(*base_latency, "count") >=
          static_cast<double>(thresholds.min_latency_samples) &&
      NumberAt(*cand_latency, "count") >=
          static_cast<double>(thresholds.min_latency_samples)) {
    // The median is the gated percentile: the p99 tail of an emission-
    // latency distribution is set by WHEN the window-expiry flush lands
    // relative to the completing event, which jitters by 10x run to run;
    // the median jitters by single-digit percent. p99 rides along ungated.
    delta.metrics.push_back(RatioMetric(
        "latency_ns.p50", NumberAt(*base_latency, "p50"),
        NumberAt(*cand_latency, "p50"), thresholds.latency_ratio,
        /*improve_below=*/0));
    delta.metrics.push_back(RatioMetric(
        "latency_ns.p99", NumberAt(*base_latency, "p99"),
        NumberAt(*cand_latency, "p99"), /*regress_above=*/0,
        /*improve_below=*/0));
  }

  // Exact counters: gate every counter the BASELINE declared deterministic
  // (the committed baseline is the contract; the candidate may add more).
  const Json* exact = base.Find("exact");
  const Json* base_counters = base.Find("counters");
  const Json* cand_counters = cand.Find("counters");
  if (exact != nullptr && exact->is_array()) {
    for (size_t i = 0; i < exact->size(); ++i) {
      if (!exact->at(i).is_string()) continue;
      const std::string& counter = exact->at(i).string_value();
      const Json* base_value =
          base_counters != nullptr ? base_counters->Find(counter) : nullptr;
      // A baseline that declares a counter exact but never recorded it is
      // malformed; nothing to gate on.
      if (base_value == nullptr) continue;
      const Json* cand_value =
          cand_counters != nullptr ? cand_counters->Find(counter) : nullptr;
      MetricDelta exact_delta;
      exact_delta.metric = "counters." + counter;
      exact_delta.baseline =
          base_value != nullptr ? base_value->number_value() : 0;
      exact_delta.candidate =
          cand_value != nullptr ? cand_value->number_value() : 0;
      exact_delta.ratio = exact_delta.baseline != 0
                              ? exact_delta.candidate / exact_delta.baseline
                              : 0;
      if (cand_value == nullptr ||
          base_value->int_value() != cand_value->int_value()) {
        exact_delta.regressed = true;
        delta.notes.push_back("exact counter '" + counter + "' changed: " +
                              std::to_string(base_value->int_value()) +
                              " -> " +
                              (cand_value != nullptr
                                   ? std::to_string(cand_value->int_value())
                                   : std::string("absent")));
      }
      delta.metrics.push_back(std::move(exact_delta));
    }
  }

  bool regressed = false;
  bool improved = false;
  for (const MetricDelta& metric : delta.metrics) {
    regressed = regressed || metric.regressed;
    improved = improved || metric.improved;
    if (metric.regressed && metric.metric == "wall_seconds.min") {
      delta.notes.push_back(
          "min wall time " + FormatSeconds(metric.baseline) + " -> " +
          FormatSeconds(metric.candidate) + " (" + FormatRatio(metric.ratio) +
          ")");
    }
  }
  delta.verdict = regressed  ? CaseVerdict::kRegress
                  : improved ? CaseVerdict::kImprove
                             : CaseVerdict::kPass;
  return delta;
}

Result<const Json*> ValidatedCases(const Json& doc, const char* label) {
  const Json* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_integer() ||
      version->int_value() != BenchReport::kSchemaVersion) {
    return Status::Corruption(std::string(label) +
                              ": missing or unsupported schema_version");
  }
  const Json* cases = doc.Find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return Status::Corruption(std::string(label) + ": missing 'cases' array");
  }
  return cases;
}

}  // namespace

Result<CompareReport> CompareBenchReports(
    const Json& baseline, const Json& candidate,
    const CompareThresholds& thresholds) {
  SES_ASSIGN_OR_RETURN(const Json* base_cases,
                       ValidatedCases(baseline, "baseline"));
  SES_ASSIGN_OR_RETURN(const Json* cand_cases,
                       ValidatedCases(candidate, "candidate"));
  const Json* base_bench = baseline.Find("bench");
  const Json* cand_bench = candidate.Find("bench");
  if (base_bench != nullptr && cand_bench != nullptr &&
      base_bench->string_value() != cand_bench->string_value()) {
    return Status::InvalidArgument(
        "comparing different benches: baseline '" +
        base_bench->string_value() + "' vs candidate '" +
        cand_bench->string_value() + "'");
  }

  auto name_of = [](const Json& entry) {
    const Json* name = entry.Find("name");
    return name != nullptr ? name->string_value() : std::string();
  };
  std::map<std::string, const Json*> candidates;
  std::vector<std::string> candidate_order;
  for (size_t i = 0; i < cand_cases->size(); ++i) {
    const std::string name = name_of(cand_cases->at(i));
    if (candidates.emplace(name, &cand_cases->at(i)).second) {
      candidate_order.push_back(name);
    }
  }

  CompareReport report;
  std::set<std::string> seen;
  for (size_t i = 0; i < base_cases->size(); ++i) {
    const Json& base = base_cases->at(i);
    const std::string name = name_of(base);
    seen.insert(name);
    auto it = candidates.find(name);
    if (it == candidates.end()) {
      CaseDelta delta;
      delta.name = name;
      delta.verdict = CaseVerdict::kMissingCandidate;
      delta.notes.push_back("baseline case absent from the candidate run");
      report.cases.push_back(std::move(delta));
      ++report.regressions;
      continue;
    }
    CaseDelta delta = CompareCase(name, base, *it->second, thresholds);
    if (delta.verdict == CaseVerdict::kRegress) ++report.regressions;
    if (delta.verdict == CaseVerdict::kImprove) ++report.improvements;
    report.cases.push_back(std::move(delta));
  }
  for (const std::string& name : candidate_order) {
    if (seen.count(name) > 0) continue;
    CaseDelta delta;
    delta.name = name;
    delta.verdict = CaseVerdict::kMissingBaseline;
    delta.notes.push_back("no baseline yet (new case; re-record baselines)");
    report.cases.push_back(std::move(delta));
    ++report.missing_baseline;
  }
  return report;
}

std::string CompareReport::ToMarkdown() const {
  std::string out;
  out += "| case | min wall (base) | min wall (cand) | Δ wall | "
         "Δ throughput | verdict |\n";
  out += "|---|---|---|---|---|---|\n";
  for (const CaseDelta& delta : cases) {
    const MetricDelta* wall = nullptr;
    const MetricDelta* throughput = nullptr;
    for (const MetricDelta& metric : delta.metrics) {
      if (metric.metric == "wall_seconds.min") wall = &metric;
      if (metric.metric == "events_per_sec") throughput = &metric;
    }
    out += "| " + delta.name + " | ";
    out += (wall != nullptr ? FormatSeconds(wall->baseline) : "-");
    out += " | ";
    out += (wall != nullptr ? FormatSeconds(wall->candidate) : "-");
    out += " | ";
    out += (wall != nullptr ? FormatRatio(wall->ratio) : "-");
    out += " | ";
    out += (throughput != nullptr ? FormatRatio(throughput->ratio) : "-");
    out += " | ";
    out += VerdictLabel(delta.verdict);
    out += " |\n";
  }
  for (const CaseDelta& delta : cases) {
    for (const std::string& note : delta.notes) {
      out += "- `" + delta.name + "`: " + note + "\n";
    }
  }
  char summary[128];
  std::snprintf(summary, sizeof(summary),
                "\n%zu case(s): %d regression(s), %d improvement(s), %d "
                "without baseline.\n",
                cases.size(), regressions, improvements, missing_baseline);
  out += summary;
  return out;
}

}  // namespace ses::bench
