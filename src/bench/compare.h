#ifndef SES_BENCH_COMPARE_H_
#define SES_BENCH_COMPARE_H_

// Baseline comparison for BENCH_*.json result files (schema in
// bench/harness.h): matches cases by name, gates deterministic counters on
// exact equality, and gates timing metrics with per-metric noise thresholds.
// tools/bench_compare is a thin CLI over this; the logic lives here so the
// pass / regress / improve / missing-baseline verdicts are unit-testable.

#include <string>
#include <vector>

#include "bench/json.h"
#include "common/result.h"

namespace ses::bench {

/// Per-metric noise thresholds. Ratios are candidate/baseline. Defaults are
/// deliberately generous: shared CI runners jitter by tens of percent, so
/// the gate is tuned to catch real cliffs (a hot path losing 2x) and exact
/// correctness drift (match counts), not single-digit noise.
struct CompareThresholds {
  /// Regression when MIN wall time grows beyond this ratio. The gate uses
  /// the min, not the mean: scheduling noise on shared runners only ever
  /// adds time, so the fastest run is the stable estimate of the true
  /// cost (the mean of a 2-run smoke case can jitter by 50%).
  double wall_ratio = 1.50;
  /// Regression when throughput falls below this ratio. events_per_sec is
  /// derived from the MEAN wall time, so this is looser than wall_ratio.
  double throughput_ratio = 0.50;
  /// Regression when MEDIAN emission latency grows beyond this ratio (only
  /// gated when both sides collected at least min_latency_samples). The
  /// median, not p99: the tail is set by window-expiry flush timing, which
  /// jitters by 10x between identical runs; p99 is reported ungated.
  double latency_ratio = 4.00;
  /// p99 of a handful of samples is pure noise; below this count the
  /// latency gate is skipped.
  int64_t min_latency_samples = 50;
  /// Improvement marker: min wall time below this ratio.
  double improve_ratio = 0.80;
};

enum class CaseVerdict {
  kPass,
  kImprove,
  kRegress,
  /// Case present only in the candidate (a new benchmark): pass, noted.
  kMissingBaseline,
  /// Case present only in the baseline (coverage loss): regression.
  kMissingCandidate,
};

/// One compared metric of one case.
struct MetricDelta {
  std::string metric;
  double baseline = 0;
  double candidate = 0;
  /// candidate / baseline; 0 when the baseline value is 0.
  double ratio = 0;
  bool regressed = false;
  bool improved = false;
};

/// Comparison outcome of one case.
struct CaseDelta {
  std::string name;
  CaseVerdict verdict = CaseVerdict::kPass;
  std::vector<MetricDelta> metrics;
  std::vector<std::string> notes;
};

/// Whole-file comparison: per-case verdicts plus the exit decision.
struct CompareReport {
  std::vector<CaseDelta> cases;
  int regressions = 0;
  int improvements = 0;
  int missing_baseline = 0;
  bool ok() const { return regressions == 0; }

  /// Markdown delta table (one row per case) plus per-case notes.
  std::string ToMarkdown() const;
};

/// Compares two parsed BENCH_*.json documents. Fails (Status, not a
/// verdict) on schema violations: wrong schema_version, missing "cases", or
/// the two files reporting different "bench" names.
Result<CompareReport> CompareBenchReports(const Json& baseline,
                                          const Json& candidate,
                                          const CompareThresholds& thresholds);

}  // namespace ses::bench

#endif  // SES_BENCH_COMPARE_H_
