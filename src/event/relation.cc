#include "event/relation.h"

#include <cmath>

#include "common/strings.h"

namespace ses {

Status EventRelation::Append(Event event) {
  if (event.num_values() != schema_.num_attributes()) {
    return Status::InvalidArgument(strings::Format(
        "event has %d values but schema %s has %d attributes",
        event.num_values(), schema_.ToString().c_str(),
        schema_.num_attributes()));
  }
  for (int i = 0; i < event.num_values(); ++i) {
    if (event.value(i).type() != schema_.attribute(i).type) {
      return Status::InvalidArgument(strings::Format(
          "attribute '%s' expects %s but event value is %s",
          schema_.attribute(i).name.c_str(),
          std::string(ValueTypeToString(schema_.attribute(i).type)).c_str(),
          std::string(ValueTypeToString(event.value(i).type())).c_str()));
    }
    // NaN compares false to everything, so a NaN attribute would make
    // condition evaluation silently unsatisfiable; the parsers reject the
    // spelling (common::ParseDouble) and the relation rejects the value.
    if (event.value(i).is_double() && std::isnan(event.value(i).as_double())) {
      return Status::InvalidArgument(strings::Format(
          "attribute '%s' is NaN; relation values must be finite numbers",
          schema_.attribute(i).name.c_str()));
    }
  }
  if (!events_.empty() && event.timestamp() < events_.back().timestamp()) {
    return Status::FailedPrecondition(strings::Format(
        "events must be appended in time order: %lld < %lld",
        static_cast<long long>(event.timestamp()),
        static_cast<long long>(events_.back().timestamp())));
  }
  if (event.id() == kInvalidEventId) {
    event.set_id(static_cast<EventId>(events_.size()) + 1);
  }
  events_.push_back(std::move(event));
  return Status::OK();
}

void EventRelation::AppendUnchecked(Timestamp timestamp,
                                    std::vector<Value> values) {
  events_.emplace_back(static_cast<EventId>(events_.size()) + 1, timestamp,
                       std::move(values));
}

Status EventRelation::ValidateTotalOrder() const {
  for (size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].timestamp() <= events_[i - 1].timestamp()) {
      return Status::FailedPrecondition(strings::Format(
          "timestamps are not strictly increasing at position %zu "
          "(%lld then %lld); the matching semantics require a total order",
          i, static_cast<long long>(events_[i - 1].timestamp()),
          static_cast<long long>(events_[i].timestamp())));
    }
  }
  return Status::OK();
}

}  // namespace ses
