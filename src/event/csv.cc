#include "event/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace ses {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  if (!NeedsQuoting(field)) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV record (no embedded newlines handled across records here;
/// ParseRecords handles multi-line quoted fields before calling this).
Result<std::vector<std::string>> SplitRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("unexpected quote inside CSV field");
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

/// Re-issues a field-level parse error with the 1-based data row and the
/// offending column name attached ("CSV row 3 column 'dose': ...").
Status TagCell(size_t row, const std::string& column, const Status& status) {
  return Status(status.code(),
                strings::Format("CSV row %zu column '%s': %s", row,
                                column.c_str(), status.message().c_str()));
}

}  // namespace

std::string WriteCsvString(const EventRelation& relation) {
  std::string out = "T";
  for (const Attribute& attr : relation.schema().attributes()) {
    out += ",";
    out += QuoteField(attr.name);
  }
  out += "\n";
  for (const Event& e : relation) {
    out += std::to_string(e.timestamp());
    for (int i = 0; i < e.num_values(); ++i) {
      out += ",";
      out += QuoteField(e.value(i).ToString());
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const EventRelation& relation, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  std::string contents = WriteCsvString(relation);
  file.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ColumnarBatch> ReadCsvStringColumnar(const std::string& contents,
                                            const Schema& schema) {
  // Split into records, respecting quotes that span newlines.
  std::vector<std::string> records;
  {
    std::string current;
    bool in_quotes = false;
    for (char c : contents) {
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\n' && !in_quotes) {
        if (!current.empty() && current.back() == '\r') current.pop_back();
        records.push_back(std::move(current));
        current.clear();
        continue;
      }
      current += c;
    }
    if (!current.empty()) {
      if (current.back() == '\r') current.pop_back();
      records.push_back(std::move(current));
    }
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }

  SES_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       SplitRecord(records[0]));
  if (header.empty() || header[0] != "T") {
    return Status::InvalidArgument("CSV header must start with column 'T'");
  }
  if (static_cast<int>(header.size()) != schema.num_attributes() + 1) {
    return Status::InvalidArgument(strings::Format(
        "CSV header has %zu columns, schema expects %d", header.size(),
        schema.num_attributes() + 1));
  }
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (header[i + 1] != schema.attribute(i).name) {
      return Status::InvalidArgument(
          strings::Format("CSV column %d is '%s', schema expects '%s'", i + 1,
                          header[i + 1].c_str(),
                          schema.attribute(i).name.c_str()));
    }
  }

  ColumnarBatch batch(schema);
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].empty()) continue;  // allow trailing blank line
    SES_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         SplitRecord(records[r]));
    if (static_cast<int>(fields.size()) != schema.num_attributes() + 1) {
      return Status::InvalidArgument(
          strings::Format("CSV row %zu has %zu fields, expected %d", r,
                          fields.size(), schema.num_attributes() + 1));
    }
    Result<int64_t> ts = strings::ParseInt64(fields[0]);
    if (!ts.ok()) return TagCell(r, "T", ts.status());
    batch.AppendIdTimestamp(kInvalidEventId, *ts);
    for (int i = 0; i < schema.num_attributes(); ++i) {
      const Attribute& attr = schema.attribute(i);
      switch (attr.type) {
        case ValueType::kInt64: {
          Result<int64_t> v = strings::ParseInt64(fields[i + 1]);
          if (!v.ok()) return TagCell(r, attr.name, v.status());
          batch.AppendInt64(i, *v);
          break;
        }
        case ValueType::kDouble: {
          Result<double> v = strings::ParseDouble(fields[i + 1]);
          if (!v.ok()) return TagCell(r, attr.name, v.status());
          batch.AppendDouble(i, *v);
          break;
        }
        case ValueType::kString:
          batch.AppendString(i, std::move(fields[i + 1]));
          break;
      }
    }
  }
  // Ids by timestamp rank (stable on ties): the id a row would carry in
  // the in-order rendering of the same file, so listings diff cleanly
  // across arrival orders.
  const std::vector<Timestamp>& timestamps = batch.timestamps();
  std::vector<size_t> rank(batch.size());
  for (size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  std::stable_sort(rank.begin(), rank.end(), [&](size_t a, size_t b) {
    return timestamps[a] < timestamps[b];
  });
  std::vector<EventId> ids(batch.size());
  for (size_t i = 0; i < rank.size(); ++i) {
    ids[rank[i]] = static_cast<EventId>(i) + 1;
  }
  batch.SetIds(std::move(ids));
  return batch;
}

Result<std::vector<Event>> ReadCsvStringArrivalOrder(
    const std::string& contents, const Schema& schema) {
  SES_ASSIGN_OR_RETURN(ColumnarBatch batch,
                       ReadCsvStringColumnar(contents, schema));
  return batch.ToEvents();
}

Result<EventRelation> ReadCsvString(const std::string& contents,
                                    const Schema& schema) {
  SES_ASSIGN_OR_RETURN(std::vector<Event> events,
                       ReadCsvStringArrivalOrder(contents, schema));
  EventRelation relation(schema);
  for (Event& event : events) {
    SES_RETURN_IF_ERROR(relation.Append(std::move(event)));
  }
  return relation;
}

Result<EventRelation> ReadCsvFile(const std::string& path,
                                  const Schema& schema) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvString(buffer.str(), schema);
}

Result<std::vector<Event>> ReadCsvFileArrivalOrder(const std::string& path,
                                                   const Schema& schema) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvStringArrivalOrder(buffer.str(), schema);
}

Result<ColumnarBatch> ReadCsvFileColumnar(const std::string& path,
                                          const Schema& schema) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvStringColumnar(buffer.str(), schema);
}

}  // namespace ses
