#include "event/event.h"

#include "common/strings.h"

namespace ses {

std::string Event::ToString() const {
  std::string out =
      strings::Format("e%lld@%s{", static_cast<long long>(id_),
                      FormatTimestamp(timestamp_).c_str());
  for (int i = 0; i < num_values(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace ses
