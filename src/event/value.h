#ifndef SES_EVENT_VALUE_H_
#define SES_EVENT_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/logging.h"
#include "common/result.h"

namespace ses {

/// Type of a non-temporal event attribute.
enum class ValueType {
  kInt64,
  kDouble,
  kString,
};

std::string_view ValueTypeToString(ValueType type);
Result<ValueType> ValueTypeFromString(std::string_view name);

/// A typed attribute value. Values of numeric types (int64, double) are
/// mutually comparable; strings are only comparable with strings. This
/// mirrors the condition language of the paper (§3.2), where conditions
/// compare attribute values with constants or with other attribute values.
class Value {
 public:
  /// Default-constructs an int64 zero (needed for container resizing).
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_int64() const { return data_.index() == 0; }
  bool is_double() const { return data_.index() == 1; }
  bool is_string() const { return data_.index() == 2; }

  /// Accessors require the matching type.
  int64_t int64() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& string() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 promoted to double. Requires a numeric type.
  double AsNumber() const {
    return is_int64() ? static_cast<double>(int64()) : as_double();
  }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<int64_t, double, std::string> data_;
};

/// True if values of the two types can be ordered against each other
/// (numeric vs numeric, or string vs string).
bool TypesComparable(ValueType a, ValueType b);

/// Typed-dispatch three-way comparison against a Value constant. These
/// three overloads are THE definition of comparison semantics — Compare()
/// below, Value::operator==, and the vectorized pre-filter kernels
/// (core/filter.h) are all built on them, so NaN and mixed-numeric
/// behavior lives in exactly one place:
///   * int64 vs int64 compares exactly (no double rounding);
///   * any other numeric pair compares as doubles via
///     `x < y ? -1 : (x > y ? 1 : 0)`, so a NaN operand yields 0
///     ("neither less nor greater"), making kEq hold and kLt/kGt fail;
///   * strings compare lexicographically (sign of compare()).
/// The constant's type must be comparable with the lhs (checked).
inline int CompareTyped(int64_t lhs, const Value& constant) {
  SES_CHECK(!constant.is_string())
      << "incomparable value types: INT vs STRING";
  if (constant.is_int64()) {
    int64_t y = constant.int64();
    return lhs < y ? -1 : (lhs > y ? 1 : 0);
  }
  double x = static_cast<double>(lhs), y = constant.as_double();
  return x < y ? -1 : (x > y ? 1 : 0);
}

inline int CompareTyped(double lhs, const Value& constant) {
  SES_CHECK(!constant.is_string())
      << "incomparable value types: DOUBLE vs STRING";
  double y = constant.AsNumber();
  return lhs < y ? -1 : (lhs > y ? 1 : 0);
}

inline int CompareTyped(std::string_view lhs, const Value& constant) {
  SES_CHECK(constant.is_string())
      << "incomparable value types: STRING vs "
      << (constant.is_int64() ? "INT" : "DOUBLE");
  int cmp = lhs.compare(constant.string());
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

/// Three-way comparison: negative if a<b, 0 if equal, positive if a>b.
/// The types must be comparable (checked; guaranteed by pattern validation).
/// Dispatches to the CompareTyped overloads above.
int Compare(const Value& a, const Value& b);

}  // namespace ses

#endif  // SES_EVENT_VALUE_H_
