#include "event/columnar.h"

#include <utility>

namespace ses {

ColumnarBatch::ColumnarBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attributes());
  dict_index_.resize(schema_.num_attributes());
  for (const Attribute& attr : schema_.attributes()) {
    switch (attr.type) {
      case ValueType::kInt64:
        columns_.emplace_back(Int64Column{});
        break;
      case ValueType::kDouble:
        columns_.emplace_back(DoubleColumn{});
        break;
      case ValueType::kString:
        columns_.emplace_back(StringColumn{});
        break;
    }
  }
}

ColumnarBatch ColumnarBatch::FromEvents(const Schema& schema,
                                        std::span<const Event> events) {
  ColumnarBatch batch(schema);
  batch.ids_.reserve(events.size());
  batch.timestamps_.reserve(events.size());
  for (Column& column : batch.columns_) {
    if (auto* ints = std::get_if<Int64Column>(&column)) {
      ints->reserve(events.size());
    } else if (auto* doubles = std::get_if<DoubleColumn>(&column)) {
      doubles->reserve(events.size());
    } else {
      std::get<StringColumn>(column).codes.reserve(events.size());
    }
  }
  for (const Event& event : events) {
    batch.AppendRow(event.id(), event.timestamp(), event.values());
  }
  return batch;
}

std::vector<Event> ColumnarBatch::ToEvents() const {
  std::vector<Event> events;
  events.reserve(size());
  for (size_t row = 0; row < size(); ++row) {
    events.push_back(RowEvent(row));
  }
  return events;
}

Value ColumnarBatch::ValueAt(size_t row, int attribute) const {
  const Column& column = columns_[attribute];
  if (const auto* ints = std::get_if<Int64Column>(&column)) {
    return Value((*ints)[row]);
  }
  if (const auto* doubles = std::get_if<DoubleColumn>(&column)) {
    return Value((*doubles)[row]);
  }
  const StringColumn& strings = std::get<StringColumn>(column);
  return Value(strings.dict[strings.codes[row]]);
}

Event ColumnarBatch::RowEvent(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (int attribute = 0; attribute < schema_.num_attributes(); ++attribute) {
    values.push_back(ValueAt(row, attribute));
  }
  return Event(ids_[row], timestamps_[row], std::move(values));
}

const ColumnarBatch::Int64Column& ColumnarBatch::int64_column(
    int attribute) const {
  const auto* column = std::get_if<Int64Column>(&columns_[attribute]);
  SES_CHECK(column != nullptr)
      << "attribute " << schema_.attribute(attribute).name
      << " is not an INT64 column";
  return *column;
}

const ColumnarBatch::DoubleColumn& ColumnarBatch::double_column(
    int attribute) const {
  const auto* column = std::get_if<DoubleColumn>(&columns_[attribute]);
  SES_CHECK(column != nullptr)
      << "attribute " << schema_.attribute(attribute).name
      << " is not a DOUBLE column";
  return *column;
}

const ColumnarBatch::StringColumn& ColumnarBatch::string_column(
    int attribute) const {
  const auto* column = std::get_if<StringColumn>(&columns_[attribute]);
  SES_CHECK(column != nullptr)
      << "attribute " << schema_.attribute(attribute).name
      << " is not a STRING column";
  return *column;
}

void ColumnarBatch::AppendRow(EventId id, Timestamp timestamp,
                              std::span<const Value> values) {
  SES_CHECK(static_cast<int>(values.size()) == schema_.num_attributes())
      << "event has " << values.size() << " values, schema has "
      << schema_.num_attributes() << " attributes";
  AppendIdTimestamp(id, timestamp);
  for (int attribute = 0; attribute < schema_.num_attributes(); ++attribute) {
    const Value& value = values[attribute];
    SES_CHECK(value.type() == schema_.attribute(attribute).type)
        << "attribute " << schema_.attribute(attribute).name << " expects "
        << ValueTypeToString(schema_.attribute(attribute).type) << ", got "
        << ValueTypeToString(value.type());
    switch (value.type()) {
      case ValueType::kInt64:
        AppendInt64(attribute, value.int64());
        break;
      case ValueType::kDouble:
        AppendDouble(attribute, value.as_double());
        break;
      case ValueType::kString:
        AppendString(attribute, value.string());
        break;
    }
  }
}

void ColumnarBatch::AppendIdTimestamp(EventId id, Timestamp timestamp) {
  ids_.push_back(id);
  timestamps_.push_back(timestamp);
}

void ColumnarBatch::AppendInt64(int attribute, int64_t value) {
  std::get<Int64Column>(columns_[attribute]).push_back(value);
}

void ColumnarBatch::AppendDouble(int attribute, double value) {
  std::get<DoubleColumn>(columns_[attribute]).push_back(value);
}

void ColumnarBatch::AppendString(int attribute, std::string value) {
  std::get<StringColumn>(columns_[attribute])
      .codes.push_back(Intern(attribute, std::move(value)));
}

void ColumnarBatch::SetIds(std::vector<EventId> ids) {
  SES_CHECK(ids.size() == size())
      << "id column size " << ids.size() << " != batch size " << size();
  ids_ = std::move(ids);
}

ColumnarBatch ColumnarBatch::Slice(size_t begin, size_t count) const {
  SES_CHECK(begin <= size() && count <= size() - begin)
      << "slice [" << begin << ", " << begin + count << ") out of range for "
      << size() << " rows";
  ColumnarBatch slice(schema_);
  slice.ids_.assign(ids_.begin() + begin, ids_.begin() + begin + count);
  slice.timestamps_.assign(timestamps_.begin() + begin,
                           timestamps_.begin() + begin + count);
  for (int attribute = 0; attribute < schema_.num_attributes(); ++attribute) {
    const Column& column = columns_[attribute];
    if (const auto* ints = std::get_if<Int64Column>(&column)) {
      std::get<Int64Column>(slice.columns_[attribute])
          .assign(ints->begin() + begin, ints->begin() + begin + count);
    } else if (const auto* doubles = std::get_if<DoubleColumn>(&column)) {
      std::get<DoubleColumn>(slice.columns_[attribute])
          .assign(doubles->begin() + begin, doubles->begin() + begin + count);
    } else {
      const StringColumn& strings = std::get<StringColumn>(column);
      for (size_t row = begin; row < begin + count; ++row) {
        slice.AppendString(attribute, strings.dict[strings.codes[row]]);
      }
    }
  }
  return slice;
}

int32_t ColumnarBatch::Intern(int attribute, std::string value) {
  auto& index = dict_index_[attribute];
  auto it = index.find(value);
  if (it != index.end()) return it->second;
  StringColumn& column = std::get<StringColumn>(columns_[attribute]);
  int32_t code = static_cast<int32_t>(column.dict.size());
  index.emplace(value, code);
  column.dict.push_back(std::move(value));
  return code;
}

}  // namespace ses
