#include "event/value.h"

#include "common/logging.h"
#include "common/strings.h"

namespace ses {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<ValueType> ValueTypeFromString(std::string_view name) {
  if (strings::EqualsIgnoreCase(name, "INT") ||
      strings::EqualsIgnoreCase(name, "INT64") ||
      strings::EqualsIgnoreCase(name, "INTEGER")) {
    return ValueType::kInt64;
  }
  if (strings::EqualsIgnoreCase(name, "DOUBLE") ||
      strings::EqualsIgnoreCase(name, "FLOAT") ||
      strings::EqualsIgnoreCase(name, "REAL")) {
    return ValueType::kDouble;
  }
  if (strings::EqualsIgnoreCase(name, "STRING") ||
      strings::EqualsIgnoreCase(name, "TEXT") ||
      strings::EqualsIgnoreCase(name, "VARCHAR")) {
    return ValueType::kString;
  }
  return Status::InvalidArgument("unknown value type: " + std::string(name));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble:
      return strings::Format("%g", as_double());
    case ValueType::kString:
      return string();
  }
  return "";
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_string() != b.is_string()) return false;
  if (a.is_string()) return a.string() == b.string();
  // Numeric: compare exactly when both int64, otherwise as doubles.
  if (a.is_int64() && b.is_int64()) return a.int64() == b.int64();
  return a.AsNumber() == b.AsNumber();
}

bool TypesComparable(ValueType a, ValueType b) {
  bool a_str = a == ValueType::kString;
  bool b_str = b == ValueType::kString;
  return a_str == b_str;
}

int Compare(const Value& a, const Value& b) {
  SES_CHECK(TypesComparable(a.type(), b.type()))
      << "incomparable value types: " << ValueTypeToString(a.type()) << " vs "
      << ValueTypeToString(b.type());
  if (a.is_string()) {
    return a.string().compare(b.string());
  }
  if (a.is_int64() && b.is_int64()) {
    int64_t x = a.int64(), y = b.int64();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  double x = a.AsNumber(), y = b.AsNumber();
  return x < y ? -1 : (x > y ? 1 : 0);
}

}  // namespace ses
