#include "event/value.h"

#include "common/logging.h"
#include "common/strings.h"

namespace ses {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<ValueType> ValueTypeFromString(std::string_view name) {
  if (strings::EqualsIgnoreCase(name, "INT") ||
      strings::EqualsIgnoreCase(name, "INT64") ||
      strings::EqualsIgnoreCase(name, "INTEGER")) {
    return ValueType::kInt64;
  }
  if (strings::EqualsIgnoreCase(name, "DOUBLE") ||
      strings::EqualsIgnoreCase(name, "FLOAT") ||
      strings::EqualsIgnoreCase(name, "REAL")) {
    return ValueType::kDouble;
  }
  if (strings::EqualsIgnoreCase(name, "STRING") ||
      strings::EqualsIgnoreCase(name, "TEXT") ||
      strings::EqualsIgnoreCase(name, "VARCHAR")) {
    return ValueType::kString;
  }
  return Status::InvalidArgument("unknown value type: " + std::string(name));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble:
      return strings::Format("%g", as_double());
    case ValueType::kString:
      return string();
  }
  return "";
}

bool operator==(const Value& a, const Value& b) {
  // Incomparable types are unequal rather than an error: equality is used
  // on heterogeneous containers (alphabet keys), not just validated
  // condition operands.
  if (a.is_string() != b.is_string()) return false;
  return Compare(a, b) == 0;
}

bool TypesComparable(ValueType a, ValueType b) {
  bool a_str = a == ValueType::kString;
  bool b_str = b == ValueType::kString;
  return a_str == b_str;
}

int Compare(const Value& a, const Value& b) {
  SES_CHECK(TypesComparable(a.type(), b.type()))
      << "incomparable value types: " << ValueTypeToString(a.type()) << " vs "
      << ValueTypeToString(b.type());
  if (a.is_string()) return CompareTyped(std::string_view(a.string()), b);
  if (a.is_int64()) return CompareTyped(a.int64(), b);
  return CompareTyped(a.as_double(), b);
}

}  // namespace ses
