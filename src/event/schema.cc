#include "event/schema.h"

#include <unordered_set>

#include "common/strings.h"

namespace ses {

bool operator==(const Attribute& a, const Attribute& b) {
  return a.name == b.name && a.type == b.type;
}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (attr.name == "T") {
      return Status::InvalidArgument(
          "attribute name 'T' is reserved for the temporal attribute");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr.name);
    }
  }
  return Schema(std::move(attributes));
}

Result<int> Schema::IndexOf(std::string_view name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_attributes(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += " ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  return a.attributes_ == b.attributes_;
}

Result<Schema> ParseSchemaText(std::string_view text) {
  std::vector<Attribute> attributes;
  for (std::string_view part : strings::Split(text, ',')) {
    part = strings::Trim(part);
    if (part.empty()) continue;
    size_t space = part.find_last_of(" \t");
    if (space == std::string_view::npos) {
      return Status::InvalidArgument(
          "schema entries need the form 'NAME TYPE': " + std::string(part));
    }
    std::string name(strings::Trim(part.substr(0, space)));
    SES_ASSIGN_OR_RETURN(
        ValueType type,
        ValueTypeFromString(strings::Trim(part.substr(space + 1))));
    attributes.push_back(Attribute{std::move(name), type});
  }
  return Schema::Create(std::move(attributes));
}

std::string FormatSchemaText(const Schema& schema) {
  std::string out;
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute(i).name;
    out += " ";
    out += ValueTypeToString(schema.attribute(i).type);
  }
  return out;
}

}  // namespace ses
