#include "event/schema.h"

#include <unordered_set>

#include "common/strings.h"

namespace ses {

bool operator==(const Attribute& a, const Attribute& b) {
  return a.name == b.name && a.type == b.type;
}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (attr.name == "T") {
      return Status::InvalidArgument(
          "attribute name 'T' is reserved for the temporal attribute");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr.name);
    }
  }
  return Schema(std::move(attributes));
}

Result<int> Schema::IndexOf(std::string_view name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_attributes(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += " ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  return a.attributes_ == b.attributes_;
}

}  // namespace ses
