#ifndef SES_EVENT_CSV_H_
#define SES_EVENT_CSV_H_

#include <string>

#include "common/result.h"
#include "event/columnar.h"
#include "event/relation.h"

namespace ses {

/// CSV serialization for event relations.
///
/// Layout: a header row "T,<attr1>,<attr2>,..." followed by one row per
/// event. The first column is the timestamp in ticks; the remaining columns
/// follow the schema's attribute order. String fields containing commas,
/// quotes, or newlines are quoted RFC-4180 style.
///
/// CSV files make datasets portable between the embedded storage engine and
/// external tools; the matcher itself consumes EventRelation directly.

/// Renders `relation` to a CSV string.
std::string WriteCsvString(const EventRelation& relation);

/// Writes `relation` to `path`. Overwrites an existing file.
Status WriteCsvFile(const EventRelation& relation, const std::string& path);

/// Parses a CSV string produced by WriteCsvString. The header must name the
/// timestamp column "T" first and match `schema` attribute names in order.
Result<EventRelation> ReadCsvString(const std::string& contents,
                                    const Schema& schema);

/// Reads a relation from `path`.
Result<EventRelation> ReadCsvFile(const std::string& path,
                                  const Schema& schema);

/// Parses CSV rows in arrival order, without requiring timestamps to be in
/// time order: the input for the bounded-lateness ingest stage
/// (docs/RUNTIME.md §6.1), which re-sequences events up to its bound.
/// Schema, type, and finiteness checks still apply per row. Event ids are
/// assigned 1-based by timestamp rank (stable on ties), not arrival
/// position, so a shuffled file names its rows exactly like its in-order
/// ordering would — match listings diff byte-identically.
Result<std::vector<Event>> ReadCsvStringArrivalOrder(
    const std::string& contents, const Schema& schema);

/// Reads arrival-ordered events from `path`.
Result<std::vector<Event>> ReadCsvFileArrivalOrder(const std::string& path,
                                                   const Schema& schema);

/// Decodes CSV straight into a columnar batch: each field is parsed into
/// its typed column (strings interned into the column dictionary) without
/// ever materializing a row-wise Event or Value vector. This is the single
/// decode path — the row-wise readers above are thin wrappers over it, so
/// both produce identical events (same rank-assigned ids, same values).
/// Rows keep arrival order; feed the batch to an engine with a lateness
/// bound if the file may be shuffled. Parse errors name the offending
/// 1-based data row and column ("CSV row 3 column 'dose': ...").
Result<ColumnarBatch> ReadCsvStringColumnar(const std::string& contents,
                                            const Schema& schema);

/// Reads a columnar batch from `path`.
Result<ColumnarBatch> ReadCsvFileColumnar(const std::string& path,
                                          const Schema& schema);

}  // namespace ses

#endif  // SES_EVENT_CSV_H_
