#ifndef SES_EVENT_EVENT_H_
#define SES_EVENT_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "event/schema.h"
#include "event/value.h"

namespace ses {

/// Stable identifier for an event within a relation or stream. Assigned in
/// arrival order (the paper labels events e1, e2, ...). Used to report
/// matches and to verify semantics in tests.
using EventId = int64_t;

constexpr EventId kInvalidEventId = -1;

/// An event: a tuple of non-temporal attribute values plus an occurrence
/// timestamp (paper §3.1). The attribute layout is defined by a Schema held
/// by the enclosing EventRelation; an Event does not own a schema pointer so
/// events stay compact.
class Event {
 public:
  Event() : id_(kInvalidEventId), timestamp_(0) {}
  Event(EventId id, Timestamp timestamp, std::vector<Value> values)
      : id_(id), timestamp_(timestamp), values_(std::move(values)) {}

  EventId id() const { return id_; }
  Timestamp timestamp() const { return timestamp_; }
  int num_values() const { return static_cast<int>(values_.size()); }
  const Value& value(int attribute_index) const {
    return values_[attribute_index];
  }
  const std::vector<Value>& values() const { return values_; }

  void set_id(EventId id) { id_ = id; }
  void set_timestamp(Timestamp t) { timestamp_ = t; }

  /// "e3@0+11:00:00{1, B, 84, mgl}" — id, time, values.
  std::string ToString() const;

 private:
  EventId id_;
  Timestamp timestamp_;
  std::vector<Value> values_;
};

}  // namespace ses

#endif  // SES_EVENT_EVENT_H_
