#ifndef SES_EVENT_RELATION_H_
#define SES_EVENT_RELATION_H_

#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "event/event.h"
#include "event/schema.h"

namespace ses {

/// An event relation: a set of events over one schema whose timestamp
/// attribute defines a total order (paper §3.1). Events are stored in
/// non-decreasing timestamp order; ValidateTotalOrder() additionally checks
/// strict ordering (no ties), which the matching semantics assume.
class EventRelation {
 public:
  EventRelation() = default;
  explicit EventRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& event(size_t i) const { return events_[i]; }
  const std::vector<Event>& events() const { return events_; }

  std::vector<Event>::const_iterator begin() const { return events_.begin(); }
  std::vector<Event>::const_iterator end() const { return events_.end(); }

  /// Appends an event. Fails if the arity does not match the schema, an
  /// attribute has the wrong type, or the timestamp is smaller than the
  /// last event's (events must be appended in time order). Assigns the
  /// event id (position in the relation, 1-based like the paper's e1..e14)
  /// when the event carries kInvalidEventId.
  Status Append(Event event);

  /// Appends values with the next timestamp/id without checks; for trusted
  /// generators. Still keeps ids consistent.
  void AppendUnchecked(Timestamp timestamp, std::vector<Value> values);

  /// Verifies strictly increasing timestamps (total order).
  Status ValidateTotalOrder() const;

  /// Earliest/latest timestamps; relation must be non-empty.
  Timestamp min_timestamp() const { return events_.front().timestamp(); }
  Timestamp max_timestamp() const { return events_.back().timestamp(); }

 private:
  Schema schema_;
  std::vector<Event> events_;
};

}  // namespace ses

#endif  // SES_EVENT_RELATION_H_
