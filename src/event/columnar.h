#ifndef SES_EVENT_COLUMNAR_H_
#define SES_EVENT_COLUMNAR_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/time.h"
#include "event/event.h"
#include "event/schema.h"

namespace ses {

/// A batch of events in columnar layout: one contiguous typed vector per
/// schema attribute plus id and timestamp columns. The row-wise Event is a
/// tuple of variant Values — every attribute access pays the variant
/// dispatch and, for strings, a heap-allocated copy per event. The columnar
/// layout stores INT64 and DOUBLE attributes as flat arrays and STRING
/// attributes dictionary-encoded (one int32 code per row into a table of
/// distinct values), so the §4.5 pre-filter can evaluate each constant
/// condition as a tight per-column loop (core/filter.h,
/// EvaluateConstantColumnar) and routing can hash partition keys straight
/// off the column.
///
/// The conversion is loss-free: ToEvents() of FromEvents(rows) reproduces
/// ids, timestamps, and values exactly (dictionary encoding preserves
/// duplicate strings; doubles round-trip bit-for-bit because they are
/// stored, never re-parsed). A batch does not enforce timestamp order —
/// ordering is the ingest contract of the engine consuming it
/// (engine::Engine::PushColumnar), exactly as with row-wise spans.
class ColumnarBatch {
 public:
  /// INT64 / DOUBLE columns are flat arrays indexed by row.
  using Int64Column = std::vector<int64_t>;
  using DoubleColumn = std::vector<double>;

  /// Dictionary-encoded STRING column: codes[row] indexes dict, which
  /// holds the distinct values in first-appearance order.
  struct StringColumn {
    std::vector<int32_t> codes;
    std::vector<std::string> dict;
  };

  /// An empty batch over `schema` (one empty column per attribute).
  explicit ColumnarBatch(Schema schema);
  ColumnarBatch() = default;

  /// Transposes row-wise events into columns. Every event must match the
  /// schema (arity and value types) — callers hold relation- or
  /// CSV-validated events, so a mismatch is a programming error (checked).
  static ColumnarBatch FromEvents(const Schema& schema,
                                  std::span<const Event> events);

  /// Materializes every row back into events, in row order. Loss-free
  /// inverse of FromEvents.
  std::vector<Event> ToEvents() const;

  const Schema& schema() const { return schema_; }
  size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  EventId id(size_t row) const { return ids_[row]; }
  Timestamp timestamp(size_t row) const { return timestamps_[row]; }
  const std::vector<EventId>& ids() const { return ids_; }
  const std::vector<Timestamp>& timestamps() const { return timestamps_; }

  /// Row-view accessors: materialize one cell / one row on demand.
  Value ValueAt(size_t row, int attribute) const;
  Event RowEvent(size_t row) const;

  /// Typed column access; the attribute's declared schema type must match
  /// (checked).
  const Int64Column& int64_column(int attribute) const;
  const DoubleColumn& double_column(int attribute) const;
  const StringColumn& string_column(int attribute) const;

  /// Appends one row. `values` must match the schema (checked). String
  /// values are interned into the column dictionary.
  void AppendRow(EventId id, Timestamp timestamp,
                 std::span<const Value> values);

  /// Column-major append for decoders that never materialize a Value row
  /// (event/csv.h): reserve the row with the id/timestamp columns, then
  /// fill each attribute cell in order.
  void AppendIdTimestamp(EventId id, Timestamp timestamp);
  void AppendInt64(int attribute, int64_t value);
  void AppendDouble(int attribute, double value);
  void AppendString(int attribute, std::string value);

  /// Overwrites the id column (CSV decode assigns ids by timestamp rank
  /// after all rows are parsed). Must match size().
  void SetIds(std::vector<EventId> ids);

  /// A copy of rows [begin, begin + count): the slicing primitive behind
  /// the CLI's --batch-rows ingest. Dictionaries are rebuilt over the
  /// slice, so a slice never retains values its rows do not use.
  ColumnarBatch Slice(size_t begin, size_t count) const;

 private:
  using Column = std::variant<Int64Column, DoubleColumn, StringColumn>;

  /// Interns `value` into column `attribute`'s dictionary and returns its
  /// code.
  int32_t Intern(int attribute, std::string value);

  Schema schema_;
  std::vector<EventId> ids_;
  std::vector<Timestamp> timestamps_;
  std::vector<Column> columns_;
  /// Per-STRING-column dictionary index (value → code), kept alongside the
  /// column so interning stays O(1) while building.
  std::vector<std::unordered_map<std::string, int32_t>> dict_index_;
};

}  // namespace ses

#endif  // SES_EVENT_COLUMNAR_H_
