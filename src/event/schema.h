#ifndef SES_EVENT_SCHEMA_H_
#define SES_EVENT_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "event/value.h"

namespace ses {

/// A named, typed non-temporal attribute of an event schema.
struct Attribute {
  std::string name;
  ValueType type;
};

/// Event schema E = (A1, ..., Al, T) from the paper (§3.1). The temporal
/// attribute T is implicit: every Event carries a timestamp in addition to
/// the attributes described here. The reserved name "T" cannot be used for
/// a non-temporal attribute.
class Schema {
 public:
  /// Validates that attribute names are non-empty, unique, and that none is
  /// the reserved temporal attribute "T".
  static Result<Schema> Create(std::vector<Attribute> attributes);

  Schema() = default;

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or NotFound.
  Result<int> IndexOf(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// "(ID INT, L STRING, V DOUBLE, U STRING)"
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);
  friend bool operator!=(const Schema& a, const Schema& b) { return !(a == b); }

 private:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

bool operator==(const Attribute& a, const Attribute& b);

/// Parses a comma-separated "NAME TYPE" attribute list into a schema, e.g.
/// "ID INT, L STRING, V DOUBLE" (TYPE one of INT/INT64, DOUBLE, STRING).
/// This is the textual schema form shared by ses_cli --schema and the wire
/// protocol's Hello handshake (net/protocol.h); FormatSchemaText is its
/// inverse.
Result<Schema> ParseSchemaText(std::string_view text);

/// Formats `schema` as the "NAME TYPE, ..." list ParseSchemaText accepts.
std::string FormatSchemaText(const Schema& schema);

}  // namespace ses

#endif  // SES_EVENT_SCHEMA_H_
