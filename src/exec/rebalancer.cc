#include "exec/rebalancer.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/checkpoint.h"

namespace ses::exec {

namespace {

/// Keys idle this many windows beyond the migration horizon are dropped
/// from the tracking table entirely (their routing reverts to the hash).
constexpr Duration kPruneWindows = 4;

}  // namespace

ShardRebalancer::ShardRebalancer(int num_shards, Duration window,
                                 RebalanceOptions options)
    : num_shards_(std::max(num_shards, 1)),
      window_(std::max<Duration>(window, 1)),
      options_(options),
      next_sample_at_(std::max<int64_t>(options.interval_events, 1)) {
  options_.interval_events = std::max<int64_t>(options_.interval_events, 1);
  options_.max_moves_per_round = std::max(options_.max_moves_per_round, 1);
  prev_busy_nanos_.assign(static_cast<size_t>(num_shards_), 0);
  policy_ = MakeMigrationPolicy(num_shards_, window_, options_);
}

int ShardRebalancer::RouteAndObserve(const Value& key, size_t hash,
                                     Timestamp timestamp) {
  int home = static_cast<int>(hash % static_cast<size_t>(num_shards_));
  auto [it, inserted] =
      keys_.try_emplace(key, KeyState{home, home, timestamp, 0, 0, 0});
  KeyState& state = it->second;
  state.last_seen = timestamp;
  ++state.events;
  // One routed event is one unit of baseline work; the workers add the
  // instance-proportional matching work on top via ObserveKeyLoad.
  ++state.work_delta;
  if (inserted) stats_.keys_tracked = static_cast<int64_t>(keys_.size());
  return state.shard;
}

void ShardRebalancer::ObserveKeyLoad(const Value& key, int64_t work,
                                     int64_t open_instances) {
  auto it = keys_.find(key);
  if (it == keys_.end()) return;  // pruned since the worker sampled it
  it->second.work_delta += std::max<int64_t>(work, 0);
  it->second.open_instances = std::max<int64_t>(open_instances, 0);
}

void ShardRebalancer::Sample(const std::vector<ShardLoad>& loads,
                             Timestamp watermark) {
  ++stats_.rounds;
  next_sample_at_ += options_.interval_events;

  LoadSnapshot snapshot;
  snapshot.watermark = watermark;
  snapshot.window = window_;
  snapshot.shards.reserve(static_cast<size_t>(num_shards_));
  for (size_t i = 0; i < static_cast<size_t>(num_shards_); ++i) {
    int64_t busy = i < loads.size() ? loads[i].busy_nanos : 0;
    int64_t delta = busy - prev_busy_nanos_[i];
    prev_busy_nanos_[i] = busy;
    snapshot.shards.push_back(ShardSample{
        static_cast<double>(i < loads.size() ? loads[i].queue_depth : 0),
        static_cast<double>(std::max<int64_t>(delta, 0))});
  }
  snapshot.keys.reserve(keys_.size());
  for (const auto& [key, state] : keys_) {
    snapshot.keys.push_back(KeyLoad{key, state.shard, state.home,
                                    state.last_seen, state.events,
                                    state.work_delta, state.open_instances});
  }

  MigrationPlan plan = policy_->PlanMigrations(snapshot);

  int applied = 0;
  for (const Migration& move : plan.moves) {
    auto it = keys_.find(move.key);
    if (it == keys_.end()) continue;
    KeyState& state = it->second;
    if (state.shard != move.from || move.to < 0 || move.to >= num_shards_ ||
        move.to == state.shard) {
      ++stats_.moves_rejected;
      continue;
    }
    // Correctness re-check, independent of the policy: a key may move only
    // when provably idle — its newest event more than one full pattern
    // window behind the watermark, so no live automaton instance can still
    // consume a future event of this key.
    if (state.last_seen + window_ >= watermark) {
      ++stats_.moves_rejected;
      continue;
    }
    bool was_override = state.shard != state.home;
    state.shard = move.to;
    bool is_override = state.shard != state.home;
    stats_.overrides_active += (is_override ? 1 : 0) - (was_override ? 1 : 0);
    ++stats_.keys_migrated;
    ++applied;
  }
  if (applied > 0) ++stats_.rebalances;
  if (plan.migrating) ++stats_.migrating_rounds;
  if (plan.hot_key_mode) ++stats_.hot_key_rounds;
  stats_.cooldown_blocked += plan.cooldown_blocked;

  // The snapshot consumed this interval's deltas; open-instance counts are
  // level samples and carry over until the workers report fresh ones.
  for (auto& [key, state] : keys_) state.work_delta = 0;
  PruneIdleKeys(watermark);
  stats_.keys_tracked = static_cast<int64_t>(keys_.size());
}

void ShardRebalancer::PruneIdleKeys(Timestamp watermark) {
  Timestamp horizon = watermark - kPruneWindows * window_;
  for (auto it = keys_.begin(); it != keys_.end();) {
    const KeyState& state = it->second;
    if (state.last_seen < horizon) {
      // Dropping the entry reverts routing to the hash shard, which is
      // safe for the same idleness reason migration is.
      if (state.shard != state.home) --stats_.overrides_active;
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardRebalancer::Reset() {
  keys_.clear();
  std::fill(prev_busy_nanos_.begin(), prev_busy_nanos_.end(), 0);
  policy_->Reset();
  stats_ = RebalancerStats{};
  next_sample_at_ = options_.interval_events;
}

void ShardRebalancer::Checkpoint(std::string* out) const {
  storage::PutSigned(out, next_sample_at_);
  storage::PutCount(out, keys_.size());
  for (const auto& [key, state] : keys_) {
    storage::PutValue(out, key);
    storage::PutSigned(out, state.home);
    storage::PutSigned(out, state.shard);
    storage::PutSigned(out, state.last_seen);
    storage::PutSigned(out, state.events);
    storage::PutSigned(out, state.work_delta);
    storage::PutSigned(out, state.open_instances);
  }
  storage::PutCount(out, prev_busy_nanos_.size());
  for (int64_t busy : prev_busy_nanos_) storage::PutSigned(out, busy);
  storage::PutSigned(out, stats_.rounds);
  storage::PutSigned(out, stats_.rebalances);
  storage::PutSigned(out, stats_.keys_migrated);
  storage::PutSigned(out, stats_.overrides_active);
  storage::PutSigned(out, stats_.keys_tracked);
  storage::PutSigned(out, stats_.migrating_rounds);
  storage::PutSigned(out, stats_.hot_key_rounds);
  storage::PutSigned(out, stats_.cooldown_blocked);
  storage::PutSigned(out, stats_.moves_rejected);
  policy_->Checkpoint(out);
}

Status ShardRebalancer::Restore(const char** p, const char* limit) {
  Reset();
  Status s = [&]() -> Status {
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &next_sample_at_));
    uint64_t num_keys = 0;
    SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_keys));
    for (uint64_t i = 0; i < num_keys; ++i) {
      Value key;
      SES_RETURN_IF_ERROR(storage::GetValue(p, limit, &key));
      KeyState state;
      int64_t home = 0, shard = 0;
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &home));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &shard));
      if (home < 0 || home >= num_shards_ || shard < 0 ||
          shard >= num_shards_) {
        return Status::Corruption(
            "checkpoint rebalancer key routed outside the shard range");
      }
      state.home = static_cast<int>(home);
      state.shard = static_cast<int>(shard);
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &state.last_seen));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &state.events));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &state.work_delta));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &state.open_instances));
      keys_.emplace(std::move(key), state);
    }
    uint64_t num_busy = 0;
    SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_busy));
    if (num_busy != prev_busy_nanos_.size()) {
      return Status::Corruption(
          "checkpoint rebalancer shard count does not match this runtime");
    }
    for (int64_t& busy : prev_busy_nanos_) {
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &busy));
    }
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.rounds));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.rebalances));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.keys_migrated));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.overrides_active));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.keys_tracked));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.migrating_rounds));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.hot_key_rounds));
    SES_RETURN_IF_ERROR(
        storage::GetSigned(p, limit, &stats_.cooldown_blocked));
    SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.moves_rejected));
    return policy_->Restore(p, limit);
  }();
  if (!s.ok()) Reset();
  return s;
}

std::string ShardRebalancer::DebugString() const {
  std::string out = strings::Format(
      "rebalancer{shards=%d window=%lld next=%lld policy=%s\n", num_shards_,
      static_cast<long long>(window_),
      static_cast<long long>(next_sample_at_),
      std::string(RebalancePolicyName(options_.policy)).c_str());
  out += strings::Format(
      " stats{rounds=%lld rebalances=%lld migrated=%lld overrides=%lld "
      "tracked=%lld migrating=%lld hot=%lld cooldown=%lld rejected=%lld}\n",
      static_cast<long long>(stats_.rounds),
      static_cast<long long>(stats_.rebalances),
      static_cast<long long>(stats_.keys_migrated),
      static_cast<long long>(stats_.overrides_active),
      static_cast<long long>(stats_.keys_tracked),
      static_cast<long long>(stats_.migrating_rounds),
      static_cast<long long>(stats_.hot_key_rounds),
      static_cast<long long>(stats_.cooldown_blocked),
      static_cast<long long>(stats_.moves_rejected));
  for (size_t i = 0; i < prev_busy_nanos_.size(); ++i) {
    out += strings::Format(" busy%zu=%lld", i,
                           static_cast<long long>(prev_busy_nanos_[i]));
  }
  out += "\n";
  for (const auto& [key, state] : keys_) {
    out += strings::Format(
        " key%s{home=%d shard=%d seen=%lld events=%lld work=%lld open=%lld}\n",
        key.ToString().c_str(), state.home, state.shard,
        static_cast<long long>(state.last_seen),
        static_cast<long long>(state.events),
        static_cast<long long>(state.work_delta),
        static_cast<long long>(state.open_instances));
  }
  out += " " + policy_->DebugString() + "}";
  return out;
}

}  // namespace ses::exec
