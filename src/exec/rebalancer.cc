#include "exec/rebalancer.h"

#include <algorithm>

namespace ses::exec {

namespace {

/// Keys idle this many windows beyond the migration horizon are dropped
/// from the tracking table entirely (their routing reverts to the hash).
constexpr Duration kPruneWindows = 4;

}  // namespace

ShardRebalancer::ShardRebalancer(int num_shards, Duration window,
                                 RebalanceOptions options)
    : num_shards_(std::max(num_shards, 1)),
      window_(std::max<Duration>(window, 1)),
      options_(options),
      next_sample_at_(std::max<int64_t>(options.interval_events, 1)) {
  options_.interval_events = std::max<int64_t>(options_.interval_events, 1);
  options_.max_moves_per_round = std::max(options_.max_moves_per_round, 1);
  depth_ewma_.assign(static_cast<size_t>(num_shards_),
                     EwmaGauge(options_.depth_alpha));
  busy_ewma_.assign(static_cast<size_t>(num_shards_),
                    EwmaGauge(options_.busy_alpha));
  prev_busy_nanos_.assign(static_cast<size_t>(num_shards_), 0);
}

int ShardRebalancer::RouteAndObserve(const Value& key, size_t hash,
                                     Timestamp timestamp) {
  int home = static_cast<int>(hash % static_cast<size_t>(num_shards_));
  auto [it, inserted] =
      keys_.try_emplace(key, KeyState{home, home, timestamp, 0});
  KeyState& state = it->second;
  state.last_seen = timestamp;
  ++state.events;
  if (inserted) stats_.keys_tracked = static_cast<int64_t>(keys_.size());
  return state.shard;
}

void ShardRebalancer::Sample(const std::vector<ShardLoad>& loads,
                             Timestamp watermark) {
  ++stats_.rounds;
  next_sample_at_ += options_.interval_events;

  double total_depth = 0;
  double total_busy = 0;
  for (size_t i = 0; i < loads.size() && i < depth_ewma_.size(); ++i) {
    depth_ewma_[i].Observe(static_cast<double>(loads[i].queue_depth));
    int64_t delta = loads[i].busy_nanos - prev_busy_nanos_[i];
    prev_busy_nanos_[i] = loads[i].busy_nanos;
    busy_ewma_[i].Observe(static_cast<double>(std::max<int64_t>(delta, 0)));
    total_depth += depth_ewma_[i].value();
    total_busy += busy_ewma_[i].value();
  }

  // Scale-free load score: each shard's share of the smoothed queue depth
  // plus its share of the smoothed busy time. Depth dominates when queues
  // back up; busy time discriminates when queues drain fast.
  int deepest = 0;
  int shallowest = 0;
  double max_score = -1;
  double min_score = -1;
  for (int i = 0; i < num_shards_; ++i) {
    size_t s = static_cast<size_t>(i);
    double score =
        (total_depth > 0 ? depth_ewma_[s].value() / total_depth : 0) +
        (total_busy > 0 ? busy_ewma_[s].value() / total_busy : 0);
    if (max_score < 0 || score > max_score) {
      max_score = score;
      deepest = i;
    }
    if (min_score < 0 || score < min_score) {
      min_score = score;
      shallowest = i;
    }
  }

  if (deepest != shallowest &&
      max_score > options_.min_imbalance * min_score + 1e-12) {
    MigrateIdleKeys(deepest, shallowest, watermark);
  }
  PruneIdleKeys(watermark);
  stats_.keys_tracked = static_cast<int64_t>(keys_.size());
}

void ShardRebalancer::MigrateIdleKeys(int source, int target,
                                      Timestamp watermark) {
  // A key may move only when provably idle: its newest event is more than
  // one full pattern window behind the watermark, so no live automaton
  // instance can still consume a future event of this key.
  std::vector<std::map<Value, KeyState, ValueOrderLess>::iterator> candidates;
  for (auto it = keys_.begin(); it != keys_.end(); ++it) {
    const KeyState& state = it->second;
    if (state.shard == source && state.last_seen + window_ < watermark) {
      candidates.push_back(it);
    }
  }
  if (candidates.empty()) return;

  // Move the historically busiest keys first: they are the likeliest to
  // contribute load when they wake up again.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a->second.events > b->second.events;
            });
  size_t moves = std::min(candidates.size(),
                          static_cast<size_t>(options_.max_moves_per_round));
  for (size_t i = 0; i < moves; ++i) {
    KeyState& state = candidates[i]->second;
    bool was_override = state.shard != state.home;
    state.shard = target;
    bool is_override = state.shard != state.home;
    stats_.overrides_active += (is_override ? 1 : 0) - (was_override ? 1 : 0);
    ++stats_.keys_migrated;
  }
  ++stats_.rebalances;
}

void ShardRebalancer::PruneIdleKeys(Timestamp watermark) {
  Timestamp horizon = watermark - kPruneWindows * window_;
  for (auto it = keys_.begin(); it != keys_.end();) {
    const KeyState& state = it->second;
    if (state.last_seen < horizon) {
      // Dropping the entry reverts routing to the hash shard, which is
      // safe for the same idleness reason migration is.
      if (state.shard != state.home) --stats_.overrides_active;
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardRebalancer::Reset() {
  keys_.clear();
  for (EwmaGauge& g : depth_ewma_) g.Reset();
  for (EwmaGauge& g : busy_ewma_) g.Reset();
  std::fill(prev_busy_nanos_.begin(), prev_busy_nanos_.end(), 0);
  stats_ = RebalancerStats{};
  next_sample_at_ = options_.interval_events;
}

}  // namespace ses::exec
