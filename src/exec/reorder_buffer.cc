#include "exec/reorder_buffer.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "storage/checkpoint.h"

namespace ses::exec {
namespace {

bool TimestampLess(const Event& a, const Event& b) {
  return a.timestamp() < b.timestamp();
}

std::string LowerCopy(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Status LateError(Timestamp event_ts, Duration bound, std::string_view detail) {
  return Status::InvalidArgument(
      "event at t=" + std::to_string(event_ts) +
      " violates the lateness bound (" + std::to_string(bound) + "): " +
      std::string(detail));
}

}  // namespace

Result<LatePolicy> ParseLatePolicy(std::string_view text) {
  std::string lower = LowerCopy(text);
  if (lower == "reject" || lower == "error") return LatePolicy::kReject;
  if (lower == "drop") return LatePolicy::kDrop;
  return Status::InvalidArgument("unknown late policy '" + std::string(text) +
                                 "' (expected 'error' or 'drop')");
}

std::string_view LatePolicyName(LatePolicy policy) {
  switch (policy) {
    case LatePolicy::kReject:
      return "reject";
    case LatePolicy::kDrop:
      return "drop";
  }
  return "unknown";
}

ReorderBuffer::ReorderBuffer(ReorderOptions options) : options_(options) {
  if (options_.lateness_bound < 0) options_.lateness_bound = 0;
}

bool ReorderBuffer::IsLate(const Event& event) const {
  if (max_seen_ != kNoTimestamp &&
      event.timestamp() < max_seen_ - options_.lateness_bound) {
    return true;
  }
  return last_released_ != kNoTimestamp && event.timestamp() <= last_released_;
}

Status ReorderBuffer::HandleLate(const Event& event) {
  ++stats_.events_late;
  if (options_.late_policy == LatePolicy::kDrop) return Status::OK();
  if (last_released_ != kNoTimestamp &&
      event.timestamp() <= last_released_) {
    return LateError(event.timestamp(), options_.lateness_bound,
                     "already released up to t=" +
                         std::to_string(last_released_));
  }
  return LateError(event.timestamp(), options_.lateness_bound,
                   "newest timestamp seen is t=" + std::to_string(max_seen_));
}

Status ReorderBuffer::Push(const Event& event, std::vector<Event>* released) {
  if (IsLate(event)) return HandleLate(event);
  ++stats_.events_admitted;
  if (max_seen_ != kNoTimestamp && event.timestamp() < max_seen_) {
    ++stats_.events_reordered;
  }
  buffer_.push_back(event);
  max_seen_ = std::max(max_seen_, event.timestamp());
  stats_.max_buffered =
      std::max(stats_.max_buffered, static_cast<int64_t>(buffer_.size()));
  return MergeAndRelease(released, /*release_all=*/false);
}

Status ReorderBuffer::PushBatch(std::span<const Event> events,
                                std::vector<Event>* released) {
  // Merging every kMergeChunk admissions keeps the buffer near the size of
  // the bound window even when a caller hands a whole relation over in one
  // span; without the intermediate rounds the buffer would transiently
  // hold the entire batch before the first release.
  constexpr size_t kMergeChunk = 256;
  Status late_status;
  size_t since_merge = 0;
  for (const Event& event : events) {
    if (IsLate(event)) {
      late_status = HandleLate(event);
      if (!late_status.ok()) break;
      continue;
    }
    ++stats_.events_admitted;
    if (max_seen_ != kNoTimestamp && event.timestamp() < max_seen_) {
      ++stats_.events_reordered;
    }
    buffer_.push_back(event);
    max_seen_ = std::max(max_seen_, event.timestamp());
    if (++since_merge >= kMergeChunk) {
      since_merge = 0;
      stats_.max_buffered =
          std::max(stats_.max_buffered, static_cast<int64_t>(buffer_.size()));
      Status merge_status = MergeAndRelease(released, /*release_all=*/false);
      if (!merge_status.ok()) return merge_status;
    }
  }
  stats_.max_buffered =
      std::max(stats_.max_buffered, static_cast<int64_t>(buffer_.size()));
  Status merge_status = MergeAndRelease(released, /*release_all=*/false);
  return late_status.ok() ? merge_status : late_status;
}

Status ReorderBuffer::MergeAndRelease(std::vector<Event>* released,
                                      bool release_all) {
  if (sorted_ < buffer_.size()) {
    auto middle = buffer_.begin() + static_cast<ptrdiff_t>(sorted_);
    std::stable_sort(middle, buffer_.end(), TimestampLess);
    std::inplace_merge(buffer_.begin(), middle, buffer_.end(), TimestampLess);
    sorted_ = buffer_.size();
  }
  // Duplicate timestamps cannot be ordered strictly; the first arrival
  // wins and later ones are bound violations. After the merge duplicates
  // are adjacent, so one linear dedup pass finds them all.
  Status status;
  auto unique_end =
      std::unique(buffer_.begin(), buffer_.end(),
                  [](const Event& a, const Event& b) {
                    return a.timestamp() == b.timestamp();
                  });
  if (unique_end != buffer_.end()) {
    const int64_t duplicates = buffer_.end() - unique_end;
    const Timestamp first_dup = unique_end->timestamp();
    stats_.events_late += duplicates;
    stats_.events_admitted -= duplicates;
    buffer_.erase(unique_end, buffer_.end());
    sorted_ = buffer_.size();
    if (options_.late_policy == LatePolicy::kReject) {
      status = LateError(first_dup, options_.lateness_bound,
                         "duplicate timestamp");
    }
  }
  if (buffer_.empty()) return status;
  size_t n = buffer_.size();
  if (!release_all) {
    const Timestamp cutoff = max_seen_ - options_.lateness_bound;
    n = 0;
    // Release strictly below max_seen - bound: any event that may still
    // legally arrive sorts after everything released here.
    while (n < buffer_.size() && buffer_[n].timestamp() < cutoff) ++n;
    if (n == 0) return status;
  }
  released->insert(released->end(), buffer_.begin(),
                   buffer_.begin() + static_cast<ptrdiff_t>(n));
  last_released_ = buffer_[n - 1].timestamp();
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(n));
  sorted_ = buffer_.size();
  return status;
}

Status ReorderBuffer::Flush(std::vector<Event>* released) {
  return MergeAndRelease(released, /*release_all=*/true);
}

void ReorderBuffer::Reset() {
  buffer_.clear();
  sorted_ = 0;
  max_seen_ = kNoTimestamp;
  last_released_ = kNoTimestamp;
  stats_ = ReorderStats();
}

void ReorderBuffer::Checkpoint(const Schema& schema, std::string* out) const {
  storage::PutCount(out, buffer_.size());
  for (const Event& event : buffer_) {
    storage::PutEventRecord(out, event, schema);
  }
  storage::PutCount(out, sorted_);
  storage::PutSigned(out, max_seen_);
  storage::PutSigned(out, last_released_);
  storage::PutSigned(out, stats_.events_admitted);
  storage::PutSigned(out, stats_.events_reordered);
  storage::PutSigned(out, stats_.events_late);
  storage::PutSigned(out, stats_.max_buffered);
}

Status ReorderBuffer::Restore(const Schema& schema, const char** p,
                              const char* limit) {
  Reset();
  uint64_t buffered = 0;
  SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &buffered));
  buffer_.reserve(buffered);
  for (uint64_t i = 0; i < buffered; ++i) {
    Event event;
    if (Status s = storage::GetEventRecord(p, limit, schema, &event);
        !s.ok()) {
      Reset();
      return s;
    }
    buffer_.push_back(std::move(event));
  }
  uint64_t sorted = 0;
  SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &sorted));
  if (sorted > buffer_.size()) {
    Reset();
    return Status::Corruption(
        "checkpoint reorder buffer sorted prefix exceeds the buffer");
  }
  sorted_ = static_cast<size_t>(sorted);
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &max_seen_));
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &last_released_));
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.events_admitted));
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.events_reordered));
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.events_late));
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &stats_.max_buffered));
  return Status::OK();
}

}  // namespace ses::exec
