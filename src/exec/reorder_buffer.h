#ifndef SES_EXEC_REORDER_BUFFER_H_
#define SES_EXEC_REORDER_BUFFER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "event/event.h"

namespace ses::exec {

/// What to do with an event that violates the lateness bound (arrives more
/// than `lateness_bound` ticks behind the newest timestamp seen, or
/// duplicates a timestamp). Either way the event is counted in
/// ReorderStats::events_late and is never forwarded out of order.
enum class LatePolicy {
  /// Fail the Push with InvalidArgument (the default): a beyond-bound
  /// event is a contract violation the producer must hear about.
  kReject,
  /// Drop the event silently (Push returns OK). For best-effort pipelines
  /// that prefer losing a straggler over stalling the stream.
  kDrop,
};

/// Parses "reject"/"error" and "drop" (case-insensitive) into a policy.
Result<LatePolicy> ParseLatePolicy(std::string_view text);

/// Canonical name of a policy: "reject" or "drop".
std::string_view LatePolicyName(LatePolicy policy);

/// Knobs of a ReorderBuffer, fixed at construction.
struct ReorderOptions {
  /// How far (in ticks) an event may arrive behind the newest timestamp
  /// already seen and still be admitted. 0 means the input must already be
  /// in order: any backwards timestamp is late. Negative values clamp to 0.
  Duration lateness_bound = 0;
  /// Disposition of events that violate the bound.
  LatePolicy late_policy = LatePolicy::kReject;
};

/// Counters of one ReorderBuffer; monotone except across Reset().
struct ReorderStats {
  /// Events accepted and eventually released (late events are excluded).
  int64_t events_admitted = 0;
  /// Admitted events that arrived out of order (older than the newest
  /// timestamp seen at arrival) and were re-sequenced by the buffer.
  int64_t events_reordered = 0;
  /// Bound violations: events more than `lateness_bound` behind the newest
  /// timestamp at arrival, behind the release floor after a Flush, or
  /// duplicating an admitted timestamp — rejected or dropped per LatePolicy.
  int64_t events_late = 0;
  /// Peak number of events resident in the buffer at once.
  int64_t max_buffered = 0;
};

/// Bounded-lateness reordering stage: admits events up to
/// `lateness_bound` ticks behind the newest timestamp seen, re-sequences
/// them into strict timestamp order, and releases an event only once
/// something newer by MORE than the bound has been observed — so any
/// event that may still legally arrive sorts strictly after everything
/// already released, and the released stream satisfies the engines'
/// strictly-increasing contract (paper §3.1) by construction.
///
/// Mechanism (the sort-new-range + merge idiom): arrivals append to an
/// unsorted tail; before each release the tail is sorted and
/// std::inplace_merge folds it into the sorted prefix, then the
/// releasable prefix (timestamp < max_seen − bound) is handed to the
/// caller. The buffer never holds more than the events of one bound-wide
/// time window (plus one batch).
///
/// Invariants:
///   * an arrival is late iff it is more than `lateness_bound` behind the
///     newest timestamp seen (deterministic — independent of internal
///     release timing), it is at or below the release floor left by a
///     Flush, or it duplicates an admitted timestamp;
///   * released events form a strictly increasing timestamp sequence,
///     and every released event is below `max_seen − lateness_bound`;
///   * feeding any permutation of a strictly increasing sequence in which
///     no event arrives more than `lateness_bound` behind the running
///     maximum releases exactly the original sequence (Push... then
///     Flush) — the equivalence the engine layer's differential tests
///     pin (docs/SEMANTICS.md §9).
///
/// Not thread-safe; drive from one thread (the engine ingest thread).
class ReorderBuffer {
 public:
  explicit ReorderBuffer(ReorderOptions options);

  /// Admits one event. Events that became releasable are APPENDED to
  /// `*released` in timestamp order. A late event returns InvalidArgument
  /// under kReject (in-bound state is unaffected and the stream may
  /// continue) or OK under kDrop.
  Status Push(const Event& event, std::vector<Event>* released);

  /// Batch variant: admits the whole span with one sort + merge round,
  /// then appends everything releasable to `*released`. Under kReject the
  /// call fails on the first late event, after admitting the in-bound
  /// events before it (their release may still be pending).
  Status PushBatch(std::span<const Event> events,
                   std::vector<Event>* released);

  /// End-of-stream: appends every buffered event to `*released` in
  /// timestamp order and empties the buffer. The release floor survives
  /// (a subsequent Push must still exceed the last released timestamp);
  /// Reset() clears it. Fails only under kReject when buffered events
  /// duplicate a timestamp.
  Status Flush(std::vector<Event>* released);

  /// Returns the buffer to its initial empty state (counters included).
  void Reset();

  /// Serializes the buffered tail, watermarks, and counters into `out`.
  /// `schema` describes the buffered events (the pattern's schema).
  void Checkpoint(const Schema& schema, std::string* out) const;

  /// Restores state written by Checkpoint() (same schema and options). On
  /// error the buffer is left Reset().
  Status Restore(const Schema& schema, const char** p, const char* limit);

  const ReorderStats& stats() const { return stats_; }

  /// Events currently buffered (admitted but not yet releasable).
  size_t buffered() const { return buffer_.size(); }

  /// Newest timestamp released so far; kNoTimestamp before the first
  /// release. New arrivals must exceed this to be admissible.
  Timestamp release_floor() const { return last_released_; }

  /// Sentinel for "no timestamp yet".
  static constexpr Timestamp kNoTimestamp =
      std::numeric_limits<Timestamp>::min();

 private:
  /// Sorts the unsorted tail and merges it into the sorted prefix, then
  /// removes duplicate-timestamp events (counted late; error under
  /// kReject). If `release_all`, everything buffered is then appended to
  /// `*released`; otherwise only the prefix below `max_seen_ − bound`.
  Status MergeAndRelease(std::vector<Event>* released, bool release_all);

  /// True if the event violates the bound: more than `lateness_bound`
  /// behind `max_seen_`, or at/below the release floor.
  bool IsLate(const Event& event) const;

  /// Counts and handles one late event per the policy.
  Status HandleLate(const Event& event);

  ReorderOptions options_;
  /// Admitted, unreleased events: a sorted prefix of length `sorted_`
  /// followed by the unsorted arrival tail.
  std::vector<Event> buffer_;
  size_t sorted_ = 0;
  Timestamp max_seen_ = kNoTimestamp;
  Timestamp last_released_ = kNoTimestamp;
  ReorderStats stats_;
};

}  // namespace ses::exec

#endif  // SES_EXEC_REORDER_BUFFER_H_
