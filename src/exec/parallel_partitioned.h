#ifndef SES_EXEC_PARALLEL_PARTITIONED_H_
#define SES_EXEC_PARALLEL_PARTITIONED_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/partitioned.h"
#include "event/columnar.h"
#include "exec/rebalancer.h"

namespace ses::exec {

/// Parallel partitioned execution — the sharded runtime on top of
/// core/partitioned.h.
///
/// The SES automaton is embarrassingly parallel across equality partitions:
/// once a pattern carries a complete equality graph on one attribute
/// (FindPartitionAttribute), events of different key values never interact.
/// This runtime exploits that by hashing partition keys onto N worker
/// shards. Each shard owns an event queue, its own map of per-key Matchers
/// (all sharing ONE compiled automaton — the exponential powerset
/// construction runs exactly once per pattern), and a private match buffer.
/// The ingest thread batches events per shard to amortize queue locking.
///
/// Match delivery has two modes. Without a sink, matches are reported at
/// the Flush() barrier: every shard flushes its partitions, the ingest
/// thread merges the per-shard buffers and sorts them with SortMatches, so
/// the output is byte-identical to serial partitioned (and global)
/// execution after the same normalization, independent of shard count and
/// scheduling. With a sink installed (ParallelOptions::sink) and eviction
/// enabled, matches are additionally delivered *incrementally*: each worker
/// seals its per-batch matches as a sorted run, and the ingest thread
/// k-way-merges the runs and emits every match whose start time lies below
/// the safety watermark min(shard progress) − τe − τ — no later match can
/// sort before that point (see docs/SEMANTICS.md §8) — so the resident
/// match buffer stays bounded on long streams instead of growing until
/// Flush. The emitted sequence over the whole stream is exactly the
/// canonical sorted order either way.
///
/// Partition eviction: streaming over high-cardinality keys (the "millions
/// of users" regime) must not keep every partition resident forever. A
/// partition whose newest event is older than `watermark − τe` is flushed
/// (accepting instances emit their matches) and reclaimed. Because τe is
/// clamped to at least the pattern window τ, every instance of an evicted
/// partition has already logically expired — any future event of that key
/// would arrive more than τ after the instance's earliest binding — so
/// eviction preserves Definition 2 semantics exactly (see DESIGN.md §8).
struct ParallelOptions {
  /// Number of worker shards (threads). Clamped to at least 1.
  int num_shards = 4;
  /// Idle-partition eviction threshold τe, in ticks. Clamped up to the
  /// pattern window so eviction never changes the match set; 0 means
  /// "evict as soon as provably safe" (τe = window). Negative disables
  /// eviction (partitions stay resident until Flush).
  Duration idle_timeout = 0;
  /// Events buffered per shard before the batch is enqueued.
  size_t batch_size = 256;
  /// Queue capacity per shard, in batches; bounds the memory a slow shard
  /// can accumulate (the ingest thread blocks when a queue is full).
  size_t queue_capacity = 64;
  /// Adaptive shard rebalancing (off by default). When enabled, the ingest
  /// thread samples per-shard queue depth and busy time every
  /// rebalance.interval_events events and migrates idle keys off the
  /// hottest shard; see exec/rebalancer.h and docs/RUNTIME.md. Output is
  /// unaffected — only which worker processes which key.
  RebalanceOptions rebalance;
  /// Options forwarded to every per-partition Matcher.
  MatcherOptions matcher;
  /// Streaming match consumer. When set, Flush(out) delivers every match to
  /// the sink (out may be null), and — if eviction is enabled (idle_timeout
  /// >= 0) — matches are emitted incrementally below the safety watermark
  /// while the stream is still running, keeping match memory bounded. The
  /// sink runs on the ingest thread (inside Push/PushBatch/Flush). When
  /// eviction is disabled, the sink still receives everything, but only at
  /// the Flush barrier.
  MatchSink sink;
  /// How often (in ingested events) the ingest thread collects sealed shard
  /// runs and emits matches below the safety watermark. Only meaningful
  /// with a sink; clamped to at least 1.
  int64_t emit_interval_events = 4096;
};

/// Counters owned by one shard worker. Only the worker writes them; the
/// ingest thread reads them after the Flush/Reset acknowledgement barrier.
struct ShardStats {
  int64_t events_processed = 0;
  int64_t batches_processed = 0;
  int64_t partitions_created = 0;
  int64_t partitions_evicted = 0;
  int64_t max_resident_partitions = 0;
  int64_t max_queue_depth = 0;
  int64_t matches_emitted = 0;
  /// Wall-clock nanoseconds this worker spent processing batches (snapshot
  /// of the live atomic the rebalancer samples).
  int64_t busy_nanos = 0;
};

/// Aggregated runtime statistics, snapshotted at Flush().
struct ParallelStats {
  int64_t events_ingested = 0;
  int64_t batches_enqueued = 0;
  int64_t partitions_created = 0;
  int64_t partitions_evicted = 0;
  int64_t max_queue_depth = 0;
  int64_t matches_emitted = 0;
  /// Matches delivered to the sink before the Flush barrier (incremental
  /// watermark-bounded emission; 0 without a sink or with eviction off).
  int64_t matches_emitted_early = 0;
  /// Peak number of completed matches resident in sealed shard runs plus
  /// the ingest-side merger — the buffer that incremental emission bounds.
  int64_t max_buffered_matches = 0;
  /// Wall-clock seconds spent merging and sorting shard outputs.
  double merge_seconds = 0.0;
  /// What the adaptive rebalancer did (all zero when it is disabled).
  RebalancerStats rebalancer;
  std::vector<ShardStats> shards;
};

/// The parallel analogue of PartitionedMatcher. Streaming contract:
///
///   SES_ASSIGN_OR_RETURN(auto matcher,
///                        ParallelPartitionedMatcher::Create(p, attr, opts));
///   for (const Event& e : incoming) SES_RETURN_IF_ERROR(matcher.Push(e));
///   std::vector<Match> matches;
///   SES_RETURN_IF_ERROR(matcher.Flush(&matches));   // barrier + merge
///   matcher.Reset();                                // optional reuse
///
/// Push is asynchronous: matches surface only at Flush (the deterministic
/// merge needs all shards quiesced). Push must see strictly increasing
/// timestamps, exactly like Matcher::Push.
class ParallelPartitionedMatcher {
 public:
  /// `attribute` must satisfy FindPartitionAttribute semantics for
  /// `pattern` (same validation as PartitionedMatcher::Create). Compiles
  /// the automaton once and starts the worker threads.
  static Result<ParallelPartitionedMatcher> Create(const Pattern& pattern,
                                                   int attribute,
                                                   ParallelOptions options = {});

  /// Shares a pre-compiled automaton and (optionally) a pre-built event
  /// pre-filter — the plan-driven construction path (see
  /// plan::CompiledPlan). The powerset construction and the filter's
  /// condition scan run once per plan, shared by every partition of every
  /// shard.
  static Result<ParallelPartitionedMatcher> Create(
      std::shared_ptr<const SesAutomaton> automaton, int attribute,
      ParallelOptions options = {},
      std::shared_ptr<const EventPreFilter> filter = nullptr);

  ~ParallelPartitionedMatcher();
  ParallelPartitionedMatcher(ParallelPartitionedMatcher&&) noexcept;
  ParallelPartitionedMatcher& operator=(ParallelPartitionedMatcher&&) noexcept;

  /// Routes the event to its key's shard. Returns FailedPrecondition on
  /// non-increasing timestamps and any error a shard has reported.
  Status Push(const Event& event);

  /// Batched ingest: routes a whole span of events in one pass, grouping
  /// them by destination shard and handing each shard its slab of
  /// batch_size-bounded batches with a single queue synchronization
  /// (BatchQueue::PushAll), instead of one lock + notify per batch. The
  /// span must continue the stream: strictly increasing timestamps, also
  /// across calls. Semantically identical to pushing each event — only
  /// the ingest-side synchronization cost changes.
  Status PushBatch(std::span<const Event> events);

  /// Columnar ingest: routes the passing rows of a columnar batch in one
  /// pass, hashing partition keys straight off the key column (per
  /// dictionary code for STRING keys) and materializing a row-wise Event
  /// only for the rows that are actually shipped to a worker.
  /// `pass_bitmap` is a §4.5 pass-bitmap over the rows (bit r of word
  /// r/64; see core/filter.h) or nullptr to route every row. Routing,
  /// watermark checks, slab cutting, and emission cadence are identical
  /// to PushBatch over the same surviving rows — only the per-row
  /// Value/Event touch count changes.
  Status PushColumnar(const ColumnarBatch& batch, const uint64_t* pass_bitmap);

  /// Relation-level splitter: validates the relation's total order once,
  /// then feeds it through PushBatch in bounded chunks so workers start
  /// draining while ingest is still running. Does not Flush — call it
  /// repeatedly to concatenate relations into one stream, then Flush.
  Status RunRelation(const EventRelation& relation);

  /// Barrier: drains every shard, flushes all partitions, merges the
  /// per-shard match buffers deterministically (SortMatches order) into
  /// `out` — or into the sink when one is installed (`out` may then be
  /// null; it receives nothing) — and snapshots stats(). The matcher stays
  /// usable afterwards; call Reset() before feeding a new relation.
  Status Flush(std::vector<Match>* out);

  /// Drops all shard state (partitions, buffered matches, statistics) and
  /// the ingest watermark so the matcher can consume a new relation.
  void Reset();

  /// Quiesces every shard (sync barrier: all pending events are processed,
  /// no state is flushed) and serializes the complete runtime state — the
  /// ingest watermark and counters, every shard's resident partitions and
  /// buffered matches, the incremental-emission merger, and the rebalancer
  /// — into `out` with the checkpoint payload primitives. The matcher keeps
  /// running afterwards; a restored matcher continues the stream with a
  /// byte-identical match sequence (docs/SEMANTICS.md §12).
  Status Checkpoint(std::string* out);

  /// Restores state written by Checkpoint() of a matcher with the same
  /// shard count, rebalancer configuration, and compiled pattern. Must be
  /// called before any events are pushed (or after Reset()); on error the
  /// matcher is left Reset().
  Status Restore(const char** p, const char* limit);

  /// Statistics snapshotted at the last Flush(), plus ingest-side counters.
  const ParallelStats& stats() const;

  const SesAutomaton& automaton() const;
  int num_shards() const;

 private:
  struct Impl;
  explicit ParallelPartitionedMatcher(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Batch API, mirroring PartitionedMatchRelation. When `attribute` is
/// negative it is auto-detected with FindPartitionAttribute.
Result<std::vector<Match>> ParallelPartitionedMatchRelation(
    const Pattern& pattern, const EventRelation& relation, int attribute = -1,
    ParallelOptions options = {}, ParallelStats* stats = nullptr);

}  // namespace ses::exec

#endif  // SES_EXEC_PARALLEL_PARTITIONED_H_
