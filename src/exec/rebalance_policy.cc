#include "exec/rebalance_policy.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "storage/checkpoint.h"

namespace ses::exec {

namespace {

/// Tolerance for floating-point threshold comparisons.
constexpr double kEps = 1e-12;

/// Shared helper: smoothed per-shard load scores. Each shard's score is
/// its share of the total smoothed queue depth plus its share of the total
/// smoothed busy time, so scores sum to 2 whenever any load exists. Depth
/// dominates when queues back up; busy time discriminates when queues
/// drain fast.
std::vector<double> ShardScores(const std::vector<EwmaGauge>& depth,
                                const std::vector<EwmaGauge>& busy) {
  double total_depth = 0;
  double total_busy = 0;
  for (const EwmaGauge& g : depth) total_depth += g.value();
  for (const EwmaGauge& g : busy) total_busy += g.value();
  std::vector<double> scores(depth.size(), 0.0);
  for (size_t i = 0; i < depth.size(); ++i) {
    scores[i] = (total_depth > 0 ? depth[i].value() / total_depth : 0) +
                (total_busy > 0 ? busy[i].value() / total_busy : 0);
  }
  return scores;
}

void ObserveShardLoads(const LoadSnapshot& snapshot,
                       std::vector<EwmaGauge>* depth,
                       std::vector<EwmaGauge>* busy) {
  for (size_t i = 0; i < snapshot.shards.size() && i < depth->size(); ++i) {
    (*depth)[i].Observe(snapshot.shards[i].queue_depth);
    (*busy)[i].Observe(std::max(snapshot.shards[i].busy_delta, 0.0));
  }
}

std::string FormatEwma(const EwmaGauge& gauge) {
  return strings::Format("%.17g/%lld", gauge.value(),
                         static_cast<long long>(gauge.samples()));
}

void CheckpointEwma(const EwmaGauge& gauge, std::string* out) {
  storage::PutDouble(out, gauge.value());
  storage::PutSigned(out, gauge.samples());
}

Status RestoreEwma(EwmaGauge* gauge, const char** p, const char* limit) {
  double value = 0;
  int64_t samples = 0;
  SES_RETURN_IF_ERROR(storage::GetDouble(p, limit, &value));
  SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &samples));
  gauge->RestoreState(value, samples);
  return Status::OK();
}

void CheckpointEwmaVector(const std::vector<EwmaGauge>& gauges,
                          std::string* out) {
  storage::PutCount(out, gauges.size());
  for (const EwmaGauge& g : gauges) CheckpointEwma(g, out);
}

Status RestoreEwmaVector(std::vector<EwmaGauge>* gauges, const char** p,
                         const char* limit) {
  uint64_t count = 0;
  SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &count));
  if (count != gauges->size()) {
    return Status::Corruption(
        "checkpoint policy shard count does not match this runtime");
  }
  for (EwmaGauge& g : *gauges) {
    SES_RETURN_IF_ERROR(RestoreEwma(&g, p, limit));
  }
  return Status::OK();
}

/// The PR-2 heuristic, preserved verbatim behind the policy interface:
/// single imbalance threshold, idle keys only, busiest-first, deepest
/// shard → shallowest shard.
class IdleDeepestPolicy : public MigrationPolicy {
 public:
  IdleDeepestPolicy(int num_shards, Duration window,
                    const RebalanceOptions& options)
      : window_(std::max<Duration>(window, 1)), options_(options) {
    depth_ewma_.assign(static_cast<size_t>(std::max(num_shards, 1)),
                       EwmaGauge(options_.depth_alpha));
    busy_ewma_.assign(depth_ewma_.size(), EwmaGauge(options_.busy_alpha));
  }

  MigrationPlan PlanMigrations(const LoadSnapshot& snapshot) override {
    ObserveShardLoads(snapshot, &depth_ewma_, &busy_ewma_);
    std::vector<double> scores = ShardScores(depth_ewma_, busy_ewma_);

    MigrationPlan plan;
    int deepest = 0;
    int shallowest = 0;
    double total = 0;
    for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
      total += scores[static_cast<size_t>(i)];
      if (scores[static_cast<size_t>(i)] >
          scores[static_cast<size_t>(deepest)]) {
        deepest = i;
      }
      if (scores[static_cast<size_t>(i)] <
          scores[static_cast<size_t>(shallowest)]) {
        shallowest = i;
      }
    }
    double mean = scores.empty() ? 0 : total / static_cast<double>(scores.size());
    plan.imbalance =
        mean > 0 ? scores[static_cast<size_t>(deepest)] / mean : 1.0;
    if (deepest == shallowest ||
        scores[static_cast<size_t>(deepest)] <=
            options_.min_imbalance * scores[static_cast<size_t>(shallowest)] +
                kEps) {
      return plan;
    }
    plan.source_shard = deepest;

    // Idle keys on the deepest shard, historically busiest first: they are
    // the likeliest to contribute load when they wake up again.
    std::vector<const KeyLoad*> candidates;
    for (const KeyLoad& key : snapshot.keys) {
      if (key.shard == deepest &&
          key.last_seen + snapshot.window < snapshot.watermark) {
        candidates.push_back(&key);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const KeyLoad* a, const KeyLoad* b) {
                if (a->events != b->events) return a->events > b->events;
                return Compare(a->key, b->key) < 0;
              });
    size_t moves = std::min(candidates.size(),
                            static_cast<size_t>(options_.max_moves_per_round));
    for (size_t i = 0; i < moves; ++i) {
      plan.moves.push_back(
          Migration{candidates[i]->key, deepest, shallowest});
    }
    plan.migrating = !plan.moves.empty();
    return plan;
  }

  void Reset() override {
    for (EwmaGauge& g : depth_ewma_) g.Reset();
    for (EwmaGauge& g : busy_ewma_) g.Reset();
  }

  std::string DebugString() const override {
    std::string out = "idle-deepest{";
    for (size_t i = 0; i < depth_ewma_.size(); ++i) {
      out += strings::Format(" shard%zu{d=%s b=%s}", i,
                             FormatEwma(depth_ewma_[i]).c_str(),
                             FormatEwma(busy_ewma_[i]).c_str());
    }
    out += " }";
    return out;
  }

  RebalancePolicyKind kind() const override {
    return RebalancePolicyKind::kIdleDeepest;
  }

  void Checkpoint(std::string* out) const override {
    CheckpointEwmaVector(depth_ewma_, out);
    CheckpointEwmaVector(busy_ewma_, out);
  }

  Status Restore(const char** p, const char* limit) override {
    Reset();
    if (Status s = RestoreEwmaVector(&depth_ewma_, p, limit); !s.ok()) {
      Reset();
      return s;
    }
    if (Status s = RestoreEwmaVector(&busy_ewma_, p, limit); !s.ok()) {
      Reset();
      return s;
    }
    return Status::OK();
  }

 private:
  Duration window_;
  RebalanceOptions options_;
  std::vector<EwmaGauge> depth_ewma_;
  std::vector<EwmaGauge> busy_ewma_;
};

/// The v2 cost-model policy: hysteresis state machine, per-key work-rate
/// and open-instance EWMAs, migration cost model, hot-key cold-neighbor
/// splitting, greedy multi-target placement, one-window per-key cooldown.
class CostModelPolicy : public MigrationPolicy {
 public:
  CostModelPolicy(int num_shards, Duration window,
                  const RebalanceOptions& options)
      : num_shards_(std::max(num_shards, 1)),
        window_(std::max<Duration>(window, 1)),
        options_(options) {
    depth_ewma_.assign(static_cast<size_t>(num_shards_),
                       EwmaGauge(options_.depth_alpha));
    busy_ewma_.assign(static_cast<size_t>(num_shards_),
                      EwmaGauge(options_.busy_alpha));
  }

  MigrationPlan PlanMigrations(const LoadSnapshot& snapshot) override {
    ObserveShardLoads(snapshot, &depth_ewma_, &busy_ewma_);
    UpdateKeyState(snapshot);

    std::vector<double> scores = ShardScores(depth_ewma_, busy_ewma_);
    MigrationPlan plan;
    double total = 0;
    int source = 0;
    for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
      total += scores[static_cast<size_t>(i)];
      if (scores[static_cast<size_t>(i)] >
          scores[static_cast<size_t>(source)]) {
        source = i;
      }
    }
    double mean =
        scores.empty() ? 0 : total / static_cast<double>(scores.size());
    plan.imbalance =
        mean > 0 ? scores[static_cast<size_t>(source)] / mean : 1.0;

    // Hysteresis: start migrating only above hi, stop only below lo; keep
    // the previous state inside the dead band.
    if (!migrating_ && plan.imbalance > options_.hi_imbalance + kEps) {
      migrating_ = true;
    } else if (migrating_ && plan.imbalance < options_.lo_imbalance - kEps) {
      migrating_ = false;
    }
    plan.migrating = migrating_;
    if (!migrating_ || num_shards_ < 2 || total <= 0) return plan;
    plan.source_shard = source;

    // Work mass on the source shard, and the share its hottest key holds.
    double source_work = 0;
    double total_work = 0;
    double hot_work = 0;
    const Value* hot_key = nullptr;
    for (const KeyLoad& key : snapshot.keys) {
      auto it = keys_.find(key.key);
      if (it == keys_.end()) continue;
      double w = it->second.work.value();
      total_work += w;
      if (key.shard != source) continue;
      source_work += w;
      if (hot_key == nullptr || w > hot_work + kEps ||
          (std::abs(w - hot_work) <= kEps &&
           Compare(key.key, *hot_key) < 0)) {
        hot_work = w;
        hot_key = &key.key;
      }
    }
    plan.hot_key_mode =
        source_work > 0 &&
        hot_work >= options_.hot_key_fraction * source_work - kEps;

    // How much smoothed work the source should shed to come back to the
    // mean. In hot-key mode the hot key's share can never move, so the
    // target is capped at the co-resident (cold) mass.
    double target_mass =
        source_work *
        (scores[static_cast<size_t>(source)] - mean) /
        std::max(scores[static_cast<size_t>(source)], kEps);
    if (plan.hot_key_mode) {
      target_mass = std::min(target_mass, source_work - hot_work);
    }

    // Admissible candidates with their net gain under the cost model.
    struct Candidate {
      const KeyLoad* key;
      double work;
      double net;
    };
    std::vector<Candidate> candidates;
    for (const KeyLoad& key : snapshot.keys) {
      if (key.shard != source) continue;
      if (plan.hot_key_mode && hot_key != nullptr &&
          Compare(key.key, *hot_key) == 0) {
        continue;  // never move the dominant key; split its neighbors off
      }
      // Correctness gate: only provably idle keys may move (no live
      // instance anywhere, nothing in flight that could still match).
      if (key.last_seen + snapshot.window >= snapshot.watermark) continue;
      auto it = keys_.find(key.key);
      if (it == keys_.end()) continue;
      const KeyState& state = it->second;
      // Cooldown: a key never migrates twice within one window.
      if (state.has_migrated &&
          snapshot.watermark - state.last_migrated < window_) {
        ++plan.cooldown_blocked;
        continue;
      }
      double work = state.work.value();
      // Cost model. Benefit: the work the move transfers off the source.
      // Cost: fixed move cost, plus override-table growth when the key
      // currently sits on its hash home, plus the cache-warmup proxy —
      // smoothed open instances × remaining warmth, which decays linearly
      // to zero one window past the idleness horizon (a key idle for 2τ
      // or longer is stone cold and carries no warmup cost).
      Timestamp idle_for = snapshot.watermark - key.last_seen;
      double warmth = 1.0 - static_cast<double>(idle_for - snapshot.window) /
                                static_cast<double>(snapshot.window);
      warmth = std::clamp(warmth, 0.0, 1.0);
      double cost = options_.move_cost +
                    (key.shard == key.home ? options_.table_cost : 0.0) +
                    options_.warmup_weight * state.instances.value() * warmth;
      candidates.push_back(Candidate{&key, work, work - cost});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.net != b.net) return a.net > b.net;
                return Compare(a.key->key, b.key->key) < 0;
              });

    // Greedy multi-target placement over running score estimates: each
    // move shifts the key's busy share onto the currently least-loaded
    // shard (preferring the key's home shard when it is about as light,
    // which shrinks the override table instead of growing it).
    std::vector<double> adjusted = scores;
    double moved_mass = 0;
    for (const Candidate& candidate : candidates) {
      if (static_cast<int>(plan.moves.size()) >=
          options_.max_moves_per_round) {
        break;
      }
      if (candidate.net <= kEps) break;  // cost model: not worth moving
      if (moved_mass >= target_mass - kEps) break;  // source balanced
      int dest = -1;
      for (int i = 0; i < num_shards_; ++i) {
        if (i == source) continue;
        if (dest < 0 || adjusted[static_cast<size_t>(i)] <
                            adjusted[static_cast<size_t>(dest)]) {
          dest = i;
        }
      }
      if (dest < 0) break;
      int home = candidate.key->home;
      if (home != source && home != dest &&
          adjusted[static_cast<size_t>(home)] <=
              adjusted[static_cast<size_t>(dest)] + 0.02) {
        dest = home;
      }
      plan.moves.push_back(Migration{candidate.key->key, source, dest});
      keys_[candidate.key->key].has_migrated = true;
      keys_[candidate.key->key].last_migrated = snapshot.watermark;
      double share =
          total_work > 0 ? candidate.work / total_work : 0.0;
      adjusted[static_cast<size_t>(source)] -= share;
      adjusted[static_cast<size_t>(dest)] += share;
      moved_mass += candidate.work;
    }
    return plan;
  }

  void Reset() override {
    for (EwmaGauge& g : depth_ewma_) g.Reset();
    for (EwmaGauge& g : busy_ewma_) g.Reset();
    keys_.clear();
    migrating_ = false;
  }

  std::string DebugString() const override {
    std::string out =
        strings::Format("cost-model{migrating=%d", migrating_ ? 1 : 0);
    for (size_t i = 0; i < depth_ewma_.size(); ++i) {
      out += strings::Format(" shard%zu{d=%s b=%s}", i,
                             FormatEwma(depth_ewma_[i]).c_str(),
                             FormatEwma(busy_ewma_[i]).c_str());
    }
    for (const auto& [key, state] : keys_) {
      out += strings::Format(
          " key%s{w=%s i=%s mig=%d@%lld}", key.ToString().c_str(),
          FormatEwma(state.work).c_str(), FormatEwma(state.instances).c_str(),
          state.has_migrated ? 1 : 0,
          static_cast<long long>(state.last_migrated));
    }
    out += " }";
    return out;
  }

  RebalancePolicyKind kind() const override {
    return RebalancePolicyKind::kCostModel;
  }

  void Checkpoint(std::string* out) const override {
    CheckpointEwmaVector(depth_ewma_, out);
    CheckpointEwmaVector(busy_ewma_, out);
    storage::PutBool(out, migrating_);
    storage::PutCount(out, keys_.size());
    for (const auto& [key, state] : keys_) {
      storage::PutValue(out, key);
      CheckpointEwma(state.work, out);
      CheckpointEwma(state.instances, out);
      storage::PutBool(out, state.has_migrated);
      storage::PutSigned(out, state.last_migrated);
    }
  }

  Status Restore(const char** p, const char* limit) override {
    Reset();
    Status s = RestoreImpl(p, limit);
    if (!s.ok()) Reset();
    return s;
  }

 private:
  Status RestoreImpl(const char** p, const char* limit) {
    SES_RETURN_IF_ERROR(RestoreEwmaVector(&depth_ewma_, p, limit));
    SES_RETURN_IF_ERROR(RestoreEwmaVector(&busy_ewma_, p, limit));
    SES_RETURN_IF_ERROR(storage::GetBool(p, limit, &migrating_));
    uint64_t num_keys = 0;
    SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_keys));
    for (uint64_t i = 0; i < num_keys; ++i) {
      Value key;
      SES_RETURN_IF_ERROR(storage::GetValue(p, limit, &key));
      KeyState state{EwmaGauge(options_.work_alpha),
                     EwmaGauge(options_.work_alpha), false, 0};
      SES_RETURN_IF_ERROR(RestoreEwma(&state.work, p, limit));
      SES_RETURN_IF_ERROR(RestoreEwma(&state.instances, p, limit));
      SES_RETURN_IF_ERROR(storage::GetBool(p, limit, &state.has_migrated));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &state.last_migrated));
      keys_.emplace(std::move(key), std::move(state));
    }
    return Status::OK();
  }

  struct KeyState {
    EwmaGauge work;
    EwmaGauge instances;
    bool has_migrated = false;
    Timestamp last_migrated = 0;
  };

  /// Feeds the per-key EWMAs from the snapshot and drops state for keys
  /// that left the snapshot (pruned by the rebalancer), bounding policy
  /// memory by the live key count.
  void UpdateKeyState(const LoadSnapshot& snapshot) {
    std::map<Value, KeyState, ValueOrderLess> next;
    for (const KeyLoad& key : snapshot.keys) {
      auto it = keys_.find(key.key);
      KeyState state = it != keys_.end()
                           ? std::move(it->second)
                           : KeyState{EwmaGauge(options_.work_alpha),
                                      EwmaGauge(options_.work_alpha), false,
                                      0};
      state.work.Observe(static_cast<double>(key.work_delta));
      state.instances.Observe(static_cast<double>(key.open_instances));
      next.emplace(key.key, std::move(state));
    }
    keys_ = std::move(next);
  }

  int num_shards_;
  Duration window_;
  RebalanceOptions options_;
  std::vector<EwmaGauge> depth_ewma_;
  std::vector<EwmaGauge> busy_ewma_;
  std::map<Value, KeyState, ValueOrderLess> keys_;
  bool migrating_ = false;
};

}  // namespace

std::string_view RebalancePolicyName(RebalancePolicyKind kind) {
  switch (kind) {
    case RebalancePolicyKind::kIdleDeepest:
      return "idle-deepest";
    case RebalancePolicyKind::kCostModel:
      return "cost-model";
  }
  return "unknown";
}

Result<RebalancePolicyKind> ParseRebalancePolicy(std::string_view name) {
  if (name == "idle-deepest" || name == "v1") {
    return RebalancePolicyKind::kIdleDeepest;
  }
  if (name == "cost-model" || name == "v2") {
    return RebalancePolicyKind::kCostModel;
  }
  return Status::InvalidArgument(
      "unknown rebalance policy '" + std::string(name) +
      "' (expected idle-deepest/v1 or cost-model/v2)");
}

std::unique_ptr<MigrationPolicy> MakeMigrationPolicy(
    int num_shards, Duration window, const RebalanceOptions& options) {
  switch (options.policy) {
    case RebalancePolicyKind::kIdleDeepest:
      return std::make_unique<IdleDeepestPolicy>(num_shards, window, options);
    case RebalancePolicyKind::kCostModel:
      break;
  }
  return std::make_unique<CostModelPolicy>(num_shards, window, options);
}

}  // namespace ses::exec
