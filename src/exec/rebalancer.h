#ifndef SES_EXEC_REBALANCER_H_
#define SES_EXEC_REBALANCER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "event/value.h"
#include "exec/rebalance_policy.h"
#include "metrics/metrics.h"

namespace ses::exec {

/// Counters describing what the rebalancer has done; snapshotted into
/// ParallelStats at Flush().
struct RebalancerStats {
  /// Load samples taken (every interval_events ingested events).
  int64_t rounds = 0;
  /// Migration rounds that actually moved keys.
  int64_t rebalances = 0;
  /// Keys migrated in total (including reverts to the home shard).
  int64_t keys_migrated = 0;
  /// Override-table entries currently routing a key off its hash shard.
  int64_t overrides_active = 0;
  /// Keys currently tracked (override table + recently-seen keys).
  int64_t keys_tracked = 0;
  /// Rounds the policy spent in the migrating hysteresis state (for the
  /// idle-deepest policy: rounds that moved keys).
  int64_t migrating_rounds = 0;
  /// Rounds where the source shard was dominated by one hot key and the
  /// plan split its cold co-resident keys off instead (cost-model only).
  int64_t hot_key_rounds = 0;
  /// Otherwise-admissible migrations suppressed by the one-window per-key
  /// cooldown (cost-model only).
  int64_t cooldown_blocked = 0;
  /// Planned moves the rebalancer refused at application time because the
  /// key was no longer provably idle (stale plan; defense in depth).
  int64_t moves_rejected = 0;
};

/// Adaptive shard rebalancer for the parallel partitioned runtime.
///
/// Static hash sharding hot-spots one worker when the key distribution is
/// skewed. This class tracks per-shard load (queue depth and busy time,
/// fed by the ingest thread every `interval_events` events) and per-key
/// load (events routed, work units and open-instance counts sampled by the
/// workers), assembles them into a LoadSnapshot, and asks a pluggable
/// MigrationPolicy (exec/rebalance_policy.h) which keys to re-route. The
/// returned plan is applied to an explicit key→shard override table the
/// ingest thread consults *before* the hash.
///
/// Only **idle** keys migrate: a key whose newest event is at least the
/// pattern window τ older than the ingest watermark. Such a key has no
/// live automaton instance anywhere — every instance would expire before
/// consuming any future event — so re-routing it cannot change the match
/// set, and the per-key ordering invariant ("all events of a key that can
/// co-occur in a match are processed by one shard, in order") is
/// preserved. docs/SEMANTICS.md §7 spells out the argument. The policies
/// plan only idle keys, and Sample() re-validates idleness before applying
/// each move, so a policy bug can cost performance but never correctness.
/// The skew-equivalence and churn tests in tests/rebalance_test.cc enforce
/// it for every thread count with both policies.
///
/// Single-threaded by design: every method is called from the ingest
/// thread only. Worker load reaches it through the cumulative busy-nanos
/// counters and the per-key load samples the runtime drains from the
/// workers before each Sample() (see ParallelPartitionedMatcher).
class ShardRebalancer {
 public:
  /// One shard's load sample: instantaneous queue depth plus the worker's
  /// cumulative busy time (the rebalancer differences consecutive samples).
  struct ShardLoad {
    int64_t queue_depth = 0;
    int64_t busy_nanos = 0;
  };

  /// `window` is the compiled pattern's τ — the idleness horizon below
  /// which a key may never migrate, and the per-key migration cooldown.
  ShardRebalancer(int num_shards, Duration window, RebalanceOptions options);

  /// Routes `key` (whose precomputed hash is `hash`) to a shard, records
  /// the observation (last-seen timestamp, per-key event count and one
  /// work unit), and returns the shard index. Consults the override table
  /// first; falls back to hash % num_shards.
  int RouteAndObserve(const Value& key, size_t hash, Timestamp timestamp);

  /// Folds a worker-side per-key load sample into the key's pending
  /// observation: `work` automaton work units since the last drain and the
  /// key's current open-instance count. Unknown (already pruned) keys are
  /// ignored.
  void ObserveKeyLoad(const Value& key, int64_t work, int64_t open_instances);

  /// True when `events_ingested` has crossed the next sampling boundary.
  bool SampleDue(int64_t events_ingested) const {
    return events_ingested >= next_sample_at_;
  }

  /// Feeds one load sample per shard, assembles the LoadSnapshot, runs the
  /// policy, and applies the planned migrations to the override table
  /// (re-validating each key's idleness first). Also prunes long-idle
  /// table entries (reverting their routing to the hash shard, which is
  /// safe for the same idleness reason).
  void Sample(const std::vector<ShardLoad>& loads, Timestamp watermark);

  /// Drops all routing state and statistics (used by Reset(): a new
  /// relation starts from pure hash routing).
  void Reset();

  /// Serializes the complete rebalancer state — the override/tracking
  /// table, busy-time baselines, sampling cursor, statistics, and the
  /// policy's state — into `out` (storage/checkpoint.h primitives).
  void Checkpoint(std::string* out) const;

  /// Restores state written by Checkpoint() of a rebalancer with the same
  /// shard count, window, and policy. On error it is left Reset().
  Status Restore(const char** p, const char* limit);

  /// Deterministic serialization of the complete rebalancer state,
  /// including the policy's. Equal strings mean equal state; a Reset()
  /// rebalancer serializes identically to a freshly constructed one.
  std::string DebugString() const;

  const RebalancerStats& stats() const { return stats_; }
  const RebalanceOptions& options() const { return options_; }
  const MigrationPolicy& policy() const { return *policy_; }

 private:
  struct KeyState {
    int home = 0;   // hash % num_shards, the route with no override
    int shard = 0;  // current route
    Timestamp last_seen = 0;
    int64_t events = 0;
    /// Work units accumulated since the last Sample() (routed events plus
    /// worker-reported automaton work).
    int64_t work_delta = 0;
    /// Open-instance count at the worker's most recent per-key sample.
    int64_t open_instances = 0;
  };

  void PruneIdleKeys(Timestamp watermark);

  int num_shards_;
  Duration window_;
  RebalanceOptions options_;
  int64_t next_sample_at_;

  std::map<Value, KeyState, ValueOrderLess> keys_;
  std::vector<int64_t> prev_busy_nanos_;
  std::unique_ptr<MigrationPolicy> policy_;
  RebalancerStats stats_;
};

}  // namespace ses::exec

#endif  // SES_EXEC_REBALANCER_H_
