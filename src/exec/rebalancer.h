#ifndef SES_EXEC_REBALANCER_H_
#define SES_EXEC_REBALANCER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.h"
#include "event/value.h"
#include "metrics/metrics.h"

namespace ses::exec {

/// Knobs for the adaptive shard rebalancer (see ShardRebalancer below and
/// docs/RUNTIME.md). The defaults favour stability: a migration round only
/// fires when one shard's smoothed load exceeds the lightest shard's by
/// min_imbalance, and each round moves at most max_moves_per_round keys.
struct RebalanceOptions {
  /// Master switch; when false the runtime routes by hash only and the
  /// rebalancer is never constructed.
  bool enabled = false;
  /// Ingested events between load samples (and hence between migration
  /// opportunities).
  int64_t interval_events = 4096;
  /// EWMA weight for queue-depth samples, in (0, 1].
  double depth_alpha = 0.4;
  /// EWMA weight for busy-time samples, in (0, 1].
  double busy_alpha = 0.4;
  /// A migration round fires only when max shard load > min_imbalance ×
  /// min shard load (load = normalized depth + busy share, so 2.0 means
  /// "the deepest shard carries twice the lightest's share").
  double min_imbalance = 1.5;
  /// Upper bound on keys migrated per round; bounds the routing-table
  /// churn a single skewed sample can cause.
  int max_moves_per_round = 64;
};

/// Counters describing what the rebalancer has done; snapshotted into
/// ParallelStats at Flush().
struct RebalancerStats {
  /// Load samples taken (every interval_events ingested events).
  int64_t rounds = 0;
  /// Migration rounds that actually moved keys.
  int64_t rebalances = 0;
  /// Keys migrated in total (including reverts to the home shard).
  int64_t keys_migrated = 0;
  /// Override-table entries currently routing a key off its hash shard.
  int64_t overrides_active = 0;
  /// Keys currently tracked (override table + recently-seen keys).
  int64_t keys_tracked = 0;
};

/// Strict weak ordering over Values, shared by the exec-layer key tables.
struct ValueOrderLess {
  bool operator()(const Value& a, const Value& b) const {
    return Compare(a, b) < 0;
  }
};

/// Adaptive shard rebalancer for the parallel partitioned runtime.
///
/// Static hash sharding hot-spots one worker when the key distribution is
/// skewed. This class tracks per-shard load (queue-depth and busy-time
/// EWMAs, fed by the ingest thread every `interval_events` events) and
/// migrates partition keys from the most loaded to the least loaded shard
/// through an explicit key→shard override table that the ingest thread
/// consults *before* the hash.
///
/// Only **idle** keys migrate: a key whose newest event is at least the
/// pattern window τ older than the ingest watermark. Such a key has no
/// live automaton instance anywhere — every instance would expire before
/// consuming any future event — so re-routing it cannot change the match
/// set, and the per-key ordering invariant ("all events of a key that can
/// co-occur in a match are processed by one shard, in order") is
/// preserved. docs/SEMANTICS.md §7 spells out the argument; the
/// skew-equivalence tests in tests/rebalance_test.cc enforce it for every
/// thread count with rebalancing on and off.
///
/// Single-threaded by design: every method is called from the ingest
/// thread only. Worker load reaches it through the cumulative busy-nanos
/// counters the runtime samples (those are atomics owned by the workers).
class ShardRebalancer {
 public:
  /// One shard's load sample: instantaneous queue depth plus the worker's
  /// cumulative busy time (the rebalancer differences consecutive samples).
  struct ShardLoad {
    int64_t queue_depth = 0;
    int64_t busy_nanos = 0;
  };

  /// `window` is the compiled pattern's τ — the idleness horizon below
  /// which a key may never migrate.
  ShardRebalancer(int num_shards, Duration window, RebalanceOptions options);

  /// Routes `key` (whose precomputed hash is `hash`) to a shard, records
  /// the observation (last-seen timestamp, per-key event count), and
  /// returns the shard index. Consults the override table first; falls
  /// back to hash % num_shards.
  int RouteAndObserve(const Value& key, size_t hash, Timestamp timestamp);

  /// True when `events_ingested` has crossed the next sampling boundary.
  bool SampleDue(int64_t events_ingested) const {
    return events_ingested >= next_sample_at_;
  }

  /// Feeds one load sample per shard, updates the EWMAs, and — when the
  /// smoothed imbalance exceeds min_imbalance — migrates up to
  /// max_moves_per_round idle keys from the deepest to the shallowest
  /// shard. Also prunes long-idle table entries (reverting their routing
  /// to the hash shard, which is safe for the same idleness reason).
  void Sample(const std::vector<ShardLoad>& loads, Timestamp watermark);

  /// Drops all routing state and statistics (used by Reset(): a new
  /// relation starts from pure hash routing).
  void Reset();

  const RebalancerStats& stats() const { return stats_; }
  const RebalanceOptions& options() const { return options_; }

 private:
  struct KeyState {
    int home = 0;   // hash % num_shards, the route with no override
    int shard = 0;  // current route
    Timestamp last_seen = 0;
    int64_t events = 0;
  };

  void MigrateIdleKeys(int source, int target, Timestamp watermark);
  void PruneIdleKeys(Timestamp watermark);

  int num_shards_;
  Duration window_;
  RebalanceOptions options_;
  int64_t next_sample_at_;

  std::map<Value, KeyState, ValueOrderLess> keys_;
  std::vector<EwmaGauge> depth_ewma_;
  std::vector<EwmaGauge> busy_ewma_;
  std::vector<int64_t> prev_busy_nanos_;
  RebalancerStats stats_;
};

}  // namespace ses::exec

#endif  // SES_EXEC_REBALANCER_H_
