#ifndef SES_EXEC_REBALANCE_POLICY_H_
#define SES_EXEC_REBALANCE_POLICY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "event/value.h"
#include "metrics/metrics.h"

namespace ses::exec {

/// Strict weak ordering over Values, shared by the exec-layer key tables.
struct ValueOrderLess {
  bool operator()(const Value& a, const Value& b) const {
    return Compare(a, b) < 0;
  }
};

/// Which migration policy the shard rebalancer runs. Both policies consume
/// the same LoadSnapshot and produce the same MigrationPlan, so they are
/// interchangeable at run time (bench/partition_ablation sweeps them
/// against each other).
enum class RebalancePolicyKind {
  /// The PR-2 heuristic: when the smoothed load imbalance exceeds
  /// min_imbalance, migrate idle keys (busiest first) from the deepest to
  /// the shallowest shard. Single threshold, no cooldown, no cost model.
  kIdleDeepest,
  /// The v2 policy engine: per-key migration cost model (expected residual
  /// skew reduction vs override-table growth + cache-warmup proxy),
  /// two-threshold hysteresis, per-key cooldown of one pattern window, and
  /// hot-key cold-neighbor splitting. See docs/RUNTIME.md §"Rebalancer
  /// policy v2".
  kCostModel,
};

/// Registry-style name of a policy ("idle-deepest", "cost-model").
std::string_view RebalancePolicyName(RebalancePolicyKind kind);

/// Parses a policy name (also accepts the aliases "v1" and "v2").
Result<RebalancePolicyKind> ParseRebalancePolicy(std::string_view name);

/// Knobs for the adaptive shard rebalancer (see exec::ShardRebalancer and
/// docs/RUNTIME.md §4–5). The defaults favour stability: migration starts
/// only when the smoothed imbalance is well above balanced, each round
/// moves at most max_moves_per_round keys, and (cost-model policy) a key
/// in motion is pinned for a full pattern window before it may move again.
struct RebalanceOptions {
  /// Master switch; when false the runtime routes by hash only and the
  /// rebalancer is never constructed.
  bool enabled = false;
  /// Which policy plans migrations. Defaults to the v2 cost model;
  /// kIdleDeepest retains the PR-2 behaviour for comparison.
  RebalancePolicyKind policy = RebalancePolicyKind::kCostModel;
  /// Ingested events between load samples (and hence between migration
  /// opportunities).
  int64_t interval_events = 4096;
  /// EWMA weight for queue-depth samples, in (0, 1].
  double depth_alpha = 0.4;
  /// EWMA weight for busy-time samples, in (0, 1].
  double busy_alpha = 0.4;
  /// kIdleDeepest only: a migration round fires when max shard load >
  /// min_imbalance × min shard load (load = normalized depth share + busy
  /// share).
  double min_imbalance = 1.5;
  /// Upper bound on keys migrated per round; bounds the routing-table
  /// churn a single skewed sample can cause.
  int max_moves_per_round = 64;

  // ---- Cost-model (v2) knobs --------------------------------------------

  /// Hysteresis upper threshold: migration starts when the deepest shard's
  /// smoothed load score exceeds hi_imbalance × the mean score.
  double hi_imbalance = 1.6;
  /// Hysteresis lower threshold: migration stops when the deepest shard's
  /// score falls below lo_imbalance × the mean. Between lo and hi the
  /// policy keeps its previous state (the dead band that prevents
  /// migrate/settle thrash).
  double lo_imbalance = 1.15;
  /// EWMA weight for per-key work-rate and open-instance samples.
  double work_alpha = 0.4;
  /// A shard is in "hot key" mode when one key carries at least this
  /// fraction of the shard's smoothed work. The hot key itself is then
  /// never planned for migration — its cold co-resident keys are moved
  /// away instead.
  double hot_key_fraction = 0.5;
  /// Fixed cost of any migration, in work units (routing-table churn,
  /// bookkeeping). A key migrates only when its expected transferred work
  /// exceeds its total migration cost.
  double move_cost = 0.25;
  /// Extra cost when the move grows the override table (moving a key that
  /// currently sits on its hash-home shard).
  double table_cost = 0.25;
  /// Weight of the cache-warmup proxy: smoothed open-instance count ×
  /// remaining warmth (how recently the key was active, linearly decaying
  /// to zero one window past the idleness horizon).
  double warmup_weight = 0.5;
};

/// One shard's load sample inside a LoadSnapshot: instantaneous queue
/// depth plus the busy-time delta (nanoseconds of worker processing time)
/// since the previous snapshot.
struct ShardSample {
  double queue_depth = 0;
  double busy_delta = 0;
};

/// One tracked key's observation inside a LoadSnapshot. `work_delta` is
/// the key's work units since the previous snapshot (routed events plus
/// automaton instances touched, sampled by the worker threads);
/// `open_instances` is the key's live instance count at its worker's most
/// recent per-key sample (0 once the partition was evicted).
struct KeyLoad {
  Value key;
  /// Shard currently routing the key (override table applied).
  int shard = 0;
  /// The key's hash-home shard (route with no override).
  int home = 0;
  /// Timestamp of the key's newest routed event.
  Timestamp last_seen = 0;
  /// Cumulative events routed to the key.
  int64_t events = 0;
  /// Work units observed since the previous snapshot.
  int64_t work_delta = 0;
  /// Live automaton instances at the last worker sample.
  int64_t open_instances = 0;
};

/// Everything a migration policy may look at for one planning round. The
/// snapshot is self-contained — watermark and window ride along — so
/// policies are pure state machines over snapshot sequences, replayable in
/// tests with no threads, sleeps, or wall clock
/// (tests/rebalance_policy_test.cc).
struct LoadSnapshot {
  /// Ingest high-water mark (newest routed event timestamp).
  Timestamp watermark = 0;
  /// The compiled pattern's window τ: the idleness horizon below which a
  /// key may never migrate, and the per-key migration cooldown span.
  Duration window = 1;
  /// Per-shard load samples, indexed by shard.
  std::vector<ShardSample> shards;
  /// Per-key observations for every tracked live key.
  std::vector<KeyLoad> keys;
};

/// One planned key migration.
struct Migration {
  Value key;
  int from = 0;
  int to = 0;
};

/// A policy's decision for one snapshot: the migrations to apply plus
/// diagnostics the tests and statistics assert on.
struct MigrationPlan {
  /// Keys to re-route, in application order.
  std::vector<Migration> moves;
  /// Hysteresis state after consuming the snapshot (cost-model policy;
  /// the idle-deepest policy reports whether this round fired).
  bool migrating = false;
  /// Smoothed imbalance: deepest shard's load score over the mean score
  /// (1.0 = perfectly balanced).
  double imbalance = 0;
  /// Shard selected to shed load, or -1 when no shard was selected.
  int source_shard = -1;
  /// True when the source shard's load was dominated by a single hot key
  /// and the plan moved its cold co-resident keys instead.
  bool hot_key_mode = false;
  /// Otherwise-admissible candidates skipped because they migrated less
  /// than one window ago.
  int cooldown_blocked = 0;
};

/// A migration policy: a deterministic state machine mapping a sequence of
/// LoadSnapshots to MigrationPlans. Implementations hold only
/// deterministic state (EWMAs, hysteresis flag, per-key cooldowns) — no
/// threads, no wall clock — so scripted snapshot sequences replay
/// identically run after run. The rebalancer applies the returned plans to
/// its routing table after re-validating each move's idleness, so a policy
/// bug can cost performance but never correctness.
class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  /// Consumes the next load snapshot and returns the migrations to apply.
  /// Deterministic: the same snapshot sequence yields the same plans.
  virtual MigrationPlan PlanMigrations(const LoadSnapshot& snapshot) = 0;

  /// Returns the policy to its freshly constructed state.
  virtual void Reset() = 0;

  /// Deterministic serialization of the full internal state; equal strings
  /// mean equal state (the Reset-restores-fresh-state property test).
  virtual std::string DebugString() const = 0;

  /// Which policy this is.
  virtual RebalancePolicyKind kind() const = 0;

  /// Serializes the policy's deterministic state (EWMAs, hysteresis flag,
  /// per-key cooldowns) into `out` with the checkpoint payload primitives.
  virtual void Checkpoint(std::string* out) const = 0;

  /// Restores state written by Checkpoint() of the same policy kind and
  /// shard count. On error the policy is left Reset().
  virtual Status Restore(const char** p, const char* limit) = 0;
};

/// Constructs the policy selected by `options.policy` for a runtime of
/// `num_shards` shards and a pattern window of `window` ticks.
std::unique_ptr<MigrationPolicy> MakeMigrationPolicy(
    int num_shards, Duration window, const RebalanceOptions& options);

}  // namespace ses::exec

#endif  // SES_EXEC_REBALANCE_POLICY_H_
