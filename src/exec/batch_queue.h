#ifndef SES_EXEC_BATCH_QUEUE_H_
#define SES_EXEC_BATCH_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/time.h"
#include "event/event.h"

namespace ses::exec {

/// A unit of work handed from the ingest thread to a shard worker of the
/// parallel partitioned runtime (see exec/parallel_partitioned.h).
struct EventBatch {
  enum class Kind {
    kEvents,  // process `events`, then run the eviction sweep
    kFlush,   // flush every partition, then acknowledge
    kSync,    // acknowledge without touching any state (checkpoint quiesce)
    kReset,   // drop all partitions, matches, and stats, then acknowledge
    kStop,    // exit the worker loop
  };

  Kind kind = Kind::kEvents;
  std::vector<Event> events;
  /// Shards never see the full stream, so the ingest thread forwards a
  /// watermark with every batch; the receiving shard uses it to detect
  /// idle partitions. For kEvents batches this is the batch's own newest
  /// timestamp — never ahead of events a later batch of the same slab
  /// still carries, which is what makes the eviction sweep safe. Control
  /// batches carry the global high-water mark.
  Timestamp watermark = 0;
};

/// Bounded FIFO of EventBatches between the ingest thread and one shard
/// worker (mutex + two condition variables). Push blocks while the queue is
/// at capacity, bounding the memory held by a slow shard; Pop blocks while
/// it is empty. The queue mutex also provides the happens-before edge that
/// lets the ingest thread read worker-owned state after a barrier batch has
/// been acknowledged.
///
/// Close() is the shutdown signal: it wakes every thread blocked in
/// Push/PushAll/Pop so neither side can deadlock when the other exits
/// early. After Close, producers see `false` from Push/PushAll (the
/// batches are discarded) and consumers drain the remaining queue, then
/// see std::nullopt from Pop.
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Blocks while the queue is full. Returns true once the batch is
  /// enqueued; false if the queue was closed first (the batch is dropped).
  bool Push(EventBatch batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(batch));
    not_empty_.notify_one();
    return true;
  }

  /// Slab variant: enqueues a whole run of batches destined for this shard
  /// with one lock acquisition and one notify per admitted chunk, instead
  /// of one lock + notify per batch. This is what makes PushBatch ingest
  /// cheap: the ingest thread splits a large span into batch_size-bounded
  /// batches and hands the per-shard slab over in (usually) a single
  /// synchronization round. Blocks like Push when the queue is at capacity;
  /// a slab larger than the remaining capacity is admitted in chunks as the
  /// worker drains the queue. Returns false if the queue is closed before
  /// the whole slab is admitted (the remainder is dropped).
  bool PushAll(std::vector<EventBatch> slab) {
    size_t next = 0;
    while (next < slab.size()) {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return closed_ || queue_.size() < capacity_; });
      if (closed_) return false;
      while (next < slab.size() && queue_.size() < capacity_) {
        queue_.push_back(std::move(slab[next++]));
      }
      not_empty_.notify_one();
    }
    return true;
  }

  /// Blocks while the queue is empty and open. Returns the next batch, or
  /// std::nullopt once the queue is closed AND drained — a worker that
  /// sees nullopt can exit its loop unconditionally.
  std::optional<EventBatch> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    EventBatch batch = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return batch;
  }

  /// Marks the queue closed and wakes everyone blocked on either side.
  /// Idempotent; already-queued batches remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<EventBatch> queue_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace ses::exec

#endif  // SES_EXEC_BATCH_QUEUE_H_
