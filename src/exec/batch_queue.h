#ifndef SES_EXEC_BATCH_QUEUE_H_
#define SES_EXEC_BATCH_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/time.h"
#include "event/event.h"

namespace ses::exec {

/// A unit of work handed from the ingest thread to a shard worker of the
/// parallel partitioned runtime (see exec/parallel_partitioned.h).
struct EventBatch {
  enum class Kind {
    kEvents,  // process `events`, then run the eviction sweep
    kFlush,   // flush every partition, then acknowledge
    kSync,    // acknowledge without touching any state (checkpoint quiesce)
    kReset,   // drop all partitions, matches, and stats, then acknowledge
    kStop,    // exit the worker loop
  };

  Kind kind = Kind::kEvents;
  std::vector<Event> events;
  /// Shards never see the full stream, so the ingest thread forwards a
  /// watermark with every batch; the receiving shard uses it to detect
  /// idle partitions. For kEvents batches this is the batch's own newest
  /// timestamp — never ahead of events a later batch of the same slab
  /// still carries, which is what makes the eviction sweep safe. Control
  /// batches carry the global high-water mark.
  Timestamp watermark = 0;
};

/// Bounded FIFO of work items between a producer thread and one consumer
/// (mutex + two condition variables). Push blocks while the queue is at
/// capacity, bounding the memory held by a slow consumer; Pop blocks while
/// it is empty. The queue mutex also provides the happens-before edge that
/// lets the producer read consumer-owned state after a barrier item has
/// been acknowledged.
///
/// Two consumers sit on this primitive: the parallel runtime's shard
/// workers (one BatchQueue of EventBatches per shard) and the network
/// server's per-connection ingest queues (net/server.h), which use
/// TryPush to turn "queue full" into an explicit Busy response instead of
/// blocking the connection's reader thread.
///
/// Close() is the shutdown signal: it wakes every thread blocked in
/// Push/PushAll/Pop so neither side can deadlock when the other exits
/// early. After Close, producers see `false` from Push/PushAll/TryPush
/// (the items are discarded) and consumers drain the remaining queue, then
/// see std::nullopt from Pop.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns true once the item is
  /// enqueued; false if the queue was closed first (the item is dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission: enqueues and returns true when there is room,
  /// returns false — without waiting — when the queue is at capacity or
  /// closed (the item is dropped either way; check closed() to tell the
  /// cases apart). This is the backpressure probe of the network server:
  /// a full queue becomes a Busy response to the client instead of a
  /// blocked reader thread.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Slab variant: enqueues a whole run of items destined for this
  /// consumer with one lock acquisition and one notify per admitted chunk,
  /// instead of one lock + notify per item. This is what makes PushBatch
  /// ingest cheap: the ingest thread splits a large span into
  /// batch_size-bounded batches and hands the per-shard slab over in
  /// (usually) a single synchronization round. Blocks like Push when the
  /// queue is at capacity; a slab larger than the remaining capacity is
  /// admitted in chunks as the consumer drains the queue. Returns false if
  /// the queue is closed before the whole slab is admitted (the remainder
  /// is dropped).
  bool PushAll(std::vector<T> slab) {
    size_t next = 0;
    while (next < slab.size()) {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return closed_ || queue_.size() < capacity_; });
      if (closed_) return false;
      while (next < slab.size() && queue_.size() < capacity_) {
        queue_.push_back(std::move(slab[next++]));
      }
      not_empty_.notify_one();
    }
    return true;
  }

  /// Blocks while the queue is empty and open. Returns the next item, or
  /// std::nullopt once the queue is closed AND drained — a consumer that
  /// sees nullopt can exit its loop unconditionally.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed and wakes everyone blocked on either side.
  /// Idempotent; already-queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  size_t capacity_;
  bool closed_ = false;
};

/// The parallel runtime's historical name for its shard work queues.
using BatchQueue = BoundedQueue<EventBatch>;

}  // namespace ses::exec

#endif  // SES_EXEC_BATCH_QUEUE_H_
