#include "exec/parallel_partitioned.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "exec/batch_queue.h"
#include "metrics/metrics.h"
#include "storage/checkpoint.h"

namespace ses::exec {

namespace {

size_t HashKey(const Value& key) {
  // DOUBLE keys are rejected at Create, so only the exact types remain.
  if (key.is_int64()) return std::hash<int64_t>{}(key.int64());
  return std::hash<std::string>{}(key.string());
}

/// Sentinel for "this worker has not processed any event yet".
constexpr Timestamp kNoWatermark = std::numeric_limits<Timestamp>::min();

/// Merges sorted runs pairwise into one canonical-order run (MatchOrderLess
/// merge tree). Distinct matches never compare equal across runs —
/// partitions are disjoint — so the result order is total on the data.
std::vector<Match> MergeSortedRuns(std::vector<std::vector<Match>> runs) {
  while (runs.size() > 1) {
    std::vector<std::vector<Match>> next;
    next.reserve(runs.size() / 2 + 1);
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      std::vector<Match> merged;
      merged.reserve(runs[i].size() + runs[i + 1].size());
      std::merge(std::make_move_iterator(runs[i].begin()),
                 std::make_move_iterator(runs[i].end()),
                 std::make_move_iterator(runs[i + 1].begin()),
                 std::make_move_iterator(runs[i + 1].end()),
                 std::back_inserter(merged), MatchOrderLess);
      next.push_back(std::move(merged));
    }
    if (runs.size() % 2 == 1) next.push_back(std::move(runs.back()));
    runs = std::move(next);
  }
  return runs.empty() ? std::vector<Match>{} : std::move(runs[0]);
}

}  // namespace

struct ParallelPartitionedMatcher::Impl {
  /// One resident partition: a per-key Matcher over the shared automaton
  /// plus the timestamp of the key's newest event (drives eviction).
  struct Partition {
    Matcher matcher;
    Timestamp last_seen = 0;
  };

  /// One key's accumulated load since the ingest thread last drained it:
  /// automaton work units (instances touched while pushing the key's
  /// events) and the key's current open-instance count.
  struct KeyLoadDelta {
    int64_t work = 0;
    int64_t open_instances = 0;
  };

  /// Worker-owned state is only touched by the shard's thread; the ingest
  /// thread reads or mutates it exclusively between a barrier
  /// acknowledgement (happens-before via `mu`) and the next queue Push
  /// (happens-before via the queue mutex).
  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    BatchQueue queue;
    std::thread worker;

    /// Cumulative wall-clock nanoseconds spent in ProcessBatch. Written by
    /// the worker, read live by the ingest thread's rebalancer sampling —
    /// hence atomic, unlike the barrier-synchronized `stats`.
    AtomicCounter busy_nanos;

    /// Per-key load deltas for the rebalancer's cost model, merged in by
    /// the worker after each batch and drained (swapped out) by the ingest
    /// thread before each rebalancer sample. Only populated when
    /// rebalancing is enabled.
    std::mutex key_load_mu;
    std::map<Value, KeyLoadDelta, ValueOrderLess> key_load;

    // Worker-owned.
    std::map<Value, Partition, ValueOrderLess> partitions;
    std::vector<Match> matches;
    ShardStats stats;
    Status status = Status::OK();

    /// Incremental emission (sink mode): per-batch sorted runs of expired
    /// matches, sealed by the worker, drained by the ingest thread.
    std::mutex runs_mu;
    std::vector<std::vector<Match>> sealed_runs;
    /// Newest event timestamp this worker has fully processed. Stored with
    /// release order AFTER the batch's run is sealed, so an ingest-side
    /// acquire load that observes the watermark also finds every run of
    /// matches emitted at or below it.
    std::atomic<Timestamp> published{kNoWatermark};

    // Barrier acknowledgement for kFlush/kReset control batches.
    std::mutex mu;
    std::condition_variable cv;
    int64_t acks = 0;
  };

  std::shared_ptr<const SesAutomaton> automaton;
  /// Shared by every partition's executor (may be null: each builds its
  /// own).
  std::shared_ptr<const EventPreFilter> filter;
  int attribute = 0;
  ParallelOptions options;
  /// Eviction threshold after clamping to the pattern window; negative
  /// disables eviction.
  Duration effective_timeout = -1;
  /// True when a sink is installed AND eviction is enabled: workers seal
  /// per-batch runs and the ingest thread emits below the safety watermark.
  bool incremental = false;
  /// True when the rebalancer is on: workers sample per-key work and
  /// open-instance counts for the migration cost model.
  bool track_key_load = false;

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::vector<Event>> pending;  // per-shard ingest buffers
  /// fed[i]: shard i has been routed at least one event (ingest-owned).
  /// Unfed shards are excluded from the safety-watermark minimum — they
  /// can only ever contribute matches newer than the global watermark.
  std::vector<bool> fed;
  /// Present iff options.rebalance.enabled; ingest-thread-owned.
  std::unique_ptr<ShardRebalancer> rebalancer;

  bool has_watermark = false;
  Timestamp watermark = 0;
  int64_t barrier_epoch = 0;

  int64_t events_ingested = 0;
  int64_t batches_enqueued = 0;
  int64_t max_queue_depth = 0;
  ParallelStats last_stats;

  // ---- Incremental emission state (ingest-owned unless noted) ----------
  /// Sorted leftover runs below which nothing was safely emittable yet;
  /// compacted to at most one run after every emission round.
  std::vector<std::vector<Match>> merge_runs;
  int64_t next_emit_at = 0;
  int64_t matches_emitted_early = 0;
  /// Matches resident in sealed shard runs + the ingest merger. Workers
  /// increment on sealing, the ingest thread decrements on emission.
  AtomicCounter buffered_matches;
  AtomicMaxGauge max_buffered;

  ~Impl() {
    if (shards.empty()) return;
    // Close (not kStop) so shutdown cannot deadlock: Close wakes a worker
    // blocked in Pop AND an ingest thread blocked in Push/PushAll on a full
    // queue; workers drain what is queued, then exit on nullopt.
    for (auto& shard : shards) {
      shard->queue.Close();
    }
    for (auto& shard : shards) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }

  void Start() {
    for (auto& shard : shards) {
      Shard* s = shard.get();
      s->worker = std::thread([this, s] { WorkerLoop(*s); });
    }
  }

  // ---- Worker side -------------------------------------------------------

  void WorkerLoop(Shard& shard) {
    while (true) {
      std::optional<EventBatch> popped = shard.queue.Pop();
      if (!popped.has_value()) return;  // queue closed and drained
      EventBatch& batch = *popped;
      switch (batch.kind) {
        case EventBatch::Kind::kEvents: {
          Stopwatch busy_watch;
          ProcessBatch(shard, batch);
          shard.busy_nanos.Increment(busy_watch.ElapsedNanos());
          break;
        }
        case EventBatch::Kind::kFlush:
          FlushShard(shard);
          Acknowledge(shard);
          break;
        case EventBatch::Kind::kSync:
          // Quiesce only: every batch queued before this one has been
          // processed, and the acknowledgement's happens-before lets the
          // ingest thread read (or rewrite) worker-owned state until its
          // next queue Push.
          Acknowledge(shard);
          break;
        case EventBatch::Kind::kReset:
          shard.partitions.clear();
          shard.matches.clear();
          {
            std::lock_guard<std::mutex> lock(shard.runs_mu);
            shard.sealed_runs.clear();
          }
          {
            std::lock_guard<std::mutex> lock(shard.key_load_mu);
            shard.key_load.clear();
          }
          shard.published.store(kNoWatermark, std::memory_order_release);
          shard.stats = ShardStats{};
          shard.busy_nanos.Reset();
          shard.status = Status::OK();
          Acknowledge(shard);
          break;
        case EventBatch::Kind::kStop:
          return;
      }
    }
  }

  void ProcessBatch(Shard& shard, EventBatch& batch) {
    ++shard.stats.batches_processed;
    size_t matches_before = shard.matches.size();
    // Batch-local per-key work accumulation (merged under the lock once at
    // the end, so the common path stays lock-free).
    std::map<Value, KeyLoadDelta, ValueOrderLess> key_load;
    for (Event& event : batch.events) {
      ++shard.stats.events_processed;
      if (!shard.status.ok()) continue;  // drain after an error
      const Value& key = event.value(static_cast<int>(attribute));
      auto it = shard.partitions.find(key);
      if (it == shard.partitions.end()) {
        it = shard.partitions
                 .emplace(key, Partition{Matcher(automaton, options.matcher,
                                                 filter),
                                         0})
                 .first;
        ++shard.stats.partitions_created;
        shard.stats.max_resident_partitions =
            std::max(shard.stats.max_resident_partitions,
                     static_cast<int64_t>(shard.partitions.size()));
      }
      Partition& partition = it->second;
      partition.last_seen = event.timestamp();
      Status status = partition.matcher.Push(event, &shard.matches);
      if (!status.ok()) shard.status = std::move(status);
      if (track_key_load) {
        // Matching cost per event is proportional to the partition's live
        // instance count — the paper's per-partition cost currency — so
        // instances-after-push is the work unit the cost model smooths.
        key_load[key].work += static_cast<int64_t>(
            partition.matcher.num_active_instances());
      }
    }
    if (effective_timeout >= 0) {
      EvictIdle(shard, batch.watermark, track_key_load ? &key_load : nullptr);
    }
    if (track_key_load && !key_load.empty()) {
      // Record each touched key's residual instance count (evicted keys
      // were zeroed by EvictIdle above), then publish the deltas.
      for (auto& [key, load] : key_load) {
        auto it = shard.partitions.find(key);
        load.open_instances =
            it != shard.partitions.end()
                ? static_cast<int64_t>(it->second.matcher.num_active_instances())
                : 0;
      }
      std::lock_guard<std::mutex> lock(shard.key_load_mu);
      for (auto& [key, load] : key_load) {
        KeyLoadDelta& sink_delta = shard.key_load[key];
        sink_delta.work += load.work;
        sink_delta.open_instances = load.open_instances;
      }
    }
    shard.stats.matches_emitted +=
        static_cast<int64_t>(shard.matches.size() - matches_before);
    if (incremental) {
      // Seal this batch's expired matches as one sorted run, then publish
      // the progress watermark (release pairs with the ingest thread's
      // acquire: whoever sees the watermark sees the run).
      if (!shard.matches.empty()) {
        SortMatches(&shard.matches);
        buffered_matches.Increment(
            static_cast<int64_t>(shard.matches.size()));
        max_buffered.Observe(buffered_matches.value());
        std::lock_guard<std::mutex> lock(shard.runs_mu);
        shard.sealed_runs.push_back(std::move(shard.matches));
        shard.matches = {};
      }
      shard.published.store(batch.watermark, std::memory_order_release);
    }
  }

  /// Flushes and reclaims partitions whose newest event is older than
  /// `watermark − τe`. Every automaton instance of such a partition has
  /// min_timestamp ≤ last_seen, and any future event of the key arrives at
  /// t > watermark, so t − min_timestamp > τe ≥ window: the instance has
  /// logically expired, and Flush emits exactly the matches the serial
  /// matcher would emit at that expiry. When `key_load` is non-null
  /// (rebalancer cost model on), evicted keys are recorded with zero open
  /// instances so the policy sees their state die.
  void EvictIdle(Shard& shard, Timestamp shard_watermark,
                 std::map<Value, KeyLoadDelta, ValueOrderLess>* key_load) {
    for (auto it = shard.partitions.begin(); it != shard.partitions.end();) {
      if (it->second.last_seen < shard_watermark - effective_timeout) {
        it->second.matcher.Flush(&shard.matches);
        if (key_load != nullptr) (*key_load)[it->first].open_instances = 0;
        it = shard.partitions.erase(it);
        ++shard.stats.partitions_evicted;
      } else {
        ++it;
      }
    }
  }

  void FlushShard(Shard& shard) {
    size_t matches_before = shard.matches.size();
    for (auto& [key, partition] : shard.partitions) {
      partition.matcher.Flush(&shard.matches);
    }
    shard.partitions.clear();
    shard.stats.matches_emitted +=
        static_cast<int64_t>(shard.matches.size() - matches_before);
    // Pre-sort this shard's run while the other shards do the same, so the
    // ingest thread's merge is a cheap k-way merge of sorted runs instead
    // of a full sort of the union.
    SortMatches(&shard.matches);
  }

  void Acknowledge(Shard& shard) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.acks;
    shard.cv.notify_all();
  }

  // ---- Ingest side -------------------------------------------------------

  /// Watermark check + routing, shared by Push and PushBatch. On success
  /// the event sits in the pending buffer of `*shard_index`. Routing
  /// consults the rebalancer's override table when rebalancing is on
  /// (which also records the key observation), the plain key hash
  /// otherwise.
  Status Admit(const Event& event, size_t* shard_index) {
    if (has_watermark && event.timestamp() <= watermark) {
      return Status::FailedPrecondition(strings::Format(
          "events must have strictly increasing timestamps "
          "(got %lld after %lld)",
          static_cast<long long>(event.timestamp()),
          static_cast<long long>(watermark)));
    }
    has_watermark = true;
    watermark = event.timestamp();
    ++events_ingested;
    const Value& key = event.value(static_cast<int>(attribute));
    size_t hash = HashKey(key);
    size_t index =
        rebalancer != nullptr
            ? static_cast<size_t>(
                  rebalancer->RouteAndObserve(key, hash, event.timestamp()))
            : hash % shards.size();
    pending[index].push_back(event);
    fed[index] = true;
    *shard_index = index;
    return Status::OK();
  }

  Status Ingest(const Event& event) {
    size_t shard_index = 0;
    SES_RETURN_IF_ERROR(Admit(event, &shard_index));
    if (pending[shard_index].size() >= options.batch_size) {
      FlushPendingSlab(shard_index, /*all=*/false);
    }
    MaybeSampleLoad();
    MaybeEmitIncremental();
    return Status::OK();
  }

  Status IngestBatch(std::span<const Event> events) {
    // One routing pass groups the span into per-shard slabs (the pending
    // buffers), then each shard receives all its full batches in a single
    // queue synchronization.
    size_t slab_threshold = options.batch_size * 8;
    for (const Event& event : events) {
      size_t shard_index = 0;
      SES_RETURN_IF_ERROR(Admit(event, &shard_index));
      // Bound pending growth on very large spans: ship a slab as soon as
      // one shard has several batches' worth buffered.
      if (pending[shard_index].size() >= slab_threshold) {
        FlushPendingSlab(shard_index, /*all=*/false);
      }
      // Keep the emission cadence inside the span too — a single huge
      // PushBatch must not defer every sealed match to the flush barrier.
      MaybeEmitIncremental();
    }
    for (size_t i = 0; i < shards.size(); ++i) {
      FlushPendingSlab(i, /*all=*/false);
    }
    MaybeSampleLoad();
    MaybeEmitIncremental();
    return Status::OK();
  }

  Status IngestColumnar(const ColumnarBatch& batch,
                        const uint64_t* pass_bitmap) {
    const size_t n = batch.size();
    const size_t slab_threshold = options.batch_size * 8;
    const bool string_key =
        batch.schema().attribute(attribute).type == ValueType::kString;
    // Hash each distinct STRING key once per batch instead of once per
    // row; INT64 keys hash straight off the flat column.
    const ColumnarBatch::StringColumn* string_keys = nullptr;
    const int64_t* int_keys = nullptr;
    std::vector<size_t> code_hash;
    if (string_key) {
      string_keys = &batch.string_column(attribute);
      code_hash.reserve(string_keys->dict.size());
      for (const std::string& value : string_keys->dict) {
        code_hash.push_back(std::hash<std::string>{}(value));
      }
    } else {
      int_keys = batch.int64_column(attribute).data();
    }
    for (size_t row = 0; row < n; ++row) {
      if (pass_bitmap != nullptr &&
          ((pass_bitmap[row >> 6] >> (row & 63)) & 1) == 0) {
        continue;
      }
      const Timestamp ts = batch.timestamp(row);
      if (has_watermark && ts <= watermark) {
        return Status::FailedPrecondition(strings::Format(
            "events must have strictly increasing timestamps "
            "(got %lld after %lld)",
            static_cast<long long>(ts), static_cast<long long>(watermark)));
      }
      has_watermark = true;
      watermark = ts;
      ++events_ingested;
      const size_t hash = string_key
                              ? code_hash[string_keys->codes[row]]
                              : std::hash<int64_t>{}(int_keys[row]);
      size_t index;
      if (rebalancer != nullptr) {
        // The override table and the cost model key on the Value, so the
        // rebalanced path still materializes it (it is the slow path by
        // construction — rebalancing trades ingest work for balance).
        index = static_cast<size_t>(rebalancer->RouteAndObserve(
            batch.ValueAt(row, attribute), hash, ts));
      } else {
        index = hash % shards.size();
      }
      pending[index].push_back(batch.RowEvent(row));
      fed[index] = true;
      if (pending[index].size() >= slab_threshold) {
        FlushPendingSlab(index, /*all=*/false);
      }
      MaybeEmitIncremental();
    }
    for (size_t i = 0; i < shards.size(); ++i) {
      FlushPendingSlab(i, /*all=*/false);
    }
    MaybeSampleLoad();
    MaybeEmitIncremental();
    return Status::OK();
  }

  /// Every emit_interval_events ingested events (sink mode only): collect
  /// the workers' sealed runs and emit everything below the safety
  /// watermark.
  void MaybeEmitIncremental() {
    if (!incremental || events_ingested < next_emit_at) return;
    next_emit_at = events_ingested + options.emit_interval_events;
    EmitBelowWatermark();
  }

  /// Drains every shard's sealed runs into the ingest-side merger, computes
  /// the safety threshold T = min(published progress over fed shards) − τe
  /// − τ, and delivers every merged match with start < T to the sink. No
  /// match sealed later can sort before an emitted one: a shard at progress
  /// p only holds pending instances with start > p − τe − τ (older
  /// partitions were evicted and their matches sealed), so everything it
  /// seals later starts at or above T (see docs/SEMANTICS.md §8).
  void EmitBelowWatermark() {
    bool any_fed = false;
    Timestamp min_published = std::numeric_limits<Timestamp>::max();
    for (size_t i = 0; i < shards.size(); ++i) {
      Shard& shard = *shards[i];
      // Acquire pairs with the worker's release store: observing the
      // watermark guarantees the runs sealed at or below it are visible.
      Timestamp published = shard.published.load(std::memory_order_acquire);
      {
        std::lock_guard<std::mutex> lock(shard.runs_mu);
        for (auto& run : shard.sealed_runs) {
          if (!run.empty()) merge_runs.push_back(std::move(run));
        }
        shard.sealed_runs.clear();
      }
      if (!fed[i]) continue;  // can only contribute matches newer than T
      any_fed = true;
      if (published == kNoWatermark) {
        // A fed shard that has not processed anything yet pins the
        // threshold: nothing is provably safe.
        min_published = kNoWatermark;
      }
      min_published = std::min(min_published, published);
    }
    if (!any_fed || min_published == kNoWatermark || merge_runs.empty()) {
      return;
    }
    const Timestamp threshold =
        min_published - effective_timeout - automaton->window();
    std::vector<Match> merged = MergeSortedRuns(std::move(merge_runs));
    merge_runs.clear();
    auto split = std::partition_point(
        merged.begin(), merged.end(),
        [&](const Match& m) { return m.start_time() < threshold; });
    int64_t emitted = static_cast<int64_t>(split - merged.begin());
    if (emitted == 0) {
      merge_runs.push_back(std::move(merged));
      return;
    }
    for (auto it = merged.begin(); it != split; ++it) {
      options.sink(std::move(*it));
    }
    matches_emitted_early += emitted;
    buffered_matches.Increment(-emitted);
    if (split != merged.end()) {
      merged.erase(merged.begin(), split);
      merge_runs.push_back(std::move(merged));
    }
  }

  /// Cuts the shard's pending buffer into batch_size-bounded EventBatches
  /// and enqueues them as one slab (single synchronization round via
  /// BatchQueue::PushAll). Keeps a sub-batch_size remainder buffered
  /// unless `all` is set (barriers must ship everything).
  void FlushPendingSlab(size_t shard_index, bool all) {
    std::vector<Event>& buffer = pending[shard_index];
    if (buffer.empty()) return;
    std::vector<EventBatch> slab;
    size_t pos = 0;
    while (buffer.size() - pos >= options.batch_size ||
           (all && pos < buffer.size())) {
      size_t count = std::min(options.batch_size, buffer.size() - pos);
      EventBatch batch;
      batch.kind = EventBatch::Kind::kEvents;
      batch.events.assign(
          std::make_move_iterator(buffer.begin() + static_cast<long>(pos)),
          std::make_move_iterator(buffer.begin() +
                                  static_cast<long>(pos + count)));
      // Stamp the batch's own newest event, NOT the global ingest
      // watermark: later batches of the same slab hold older events than
      // the global high-water mark, and the eviction sweep may only assume
      // idleness relative to what this shard has actually processed.
      batch.watermark = batch.events.back().timestamp();
      slab.push_back(std::move(batch));
      pos += count;
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<long>(pos));
    if (slab.empty()) return;
    Shard& shard = *shards[shard_index];
    batches_enqueued += static_cast<int64_t>(slab.size());
    shard.queue.PushAll(std::move(slab));
    max_queue_depth = std::max(
        max_queue_depth, static_cast<int64_t>(shard.queue.depth()));
  }

  /// Every rebalance.interval_events ingested events: drain the workers'
  /// per-key load samples, sample queue depth and busy time per shard, and
  /// let the rebalancer's policy plan and apply key migrations.
  void MaybeSampleLoad() {
    if (rebalancer == nullptr || !rebalancer->SampleDue(events_ingested)) {
      return;
    }
    std::vector<ShardRebalancer::ShardLoad> loads;
    loads.reserve(shards.size());
    for (auto& shard : shards) {
      std::map<Value, KeyLoadDelta, ValueOrderLess> key_load;
      {
        std::lock_guard<std::mutex> lock(shard->key_load_mu);
        key_load.swap(shard->key_load);
      }
      for (const auto& [key, load] : key_load) {
        rebalancer->ObserveKeyLoad(key, load.work, load.open_instances);
      }
      loads.push_back(ShardRebalancer::ShardLoad{
          static_cast<int64_t>(shard->queue.depth()),
          shard->busy_nanos.value()});
    }
    rebalancer->Sample(loads, watermark);
  }

  /// Enqueues a control batch to every shard and waits until all of them
  /// acknowledge it. Pending event buffers are flushed first so the control
  /// batch observes the full stream.
  void Barrier(EventBatch::Kind kind) {
    for (size_t i = 0; i < shards.size(); ++i) {
      if (kind == EventBatch::Kind::kReset) {
        pending[i].clear();
      } else {
        // kFlush and kSync must observe the full stream.
        FlushPendingSlab(i, /*all=*/true);
      }
    }
    ++barrier_epoch;
    for (auto& shard : shards) {
      shard->queue.Push(EventBatch{kind, {}, watermark});
    }
    for (auto& shard : shards) {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock, [&] { return shard->acks >= barrier_epoch; });
    }
  }

  Status Flush(std::vector<Match>* out) {
    Barrier(EventBatch::Kind::kFlush);

    Stopwatch merge_watch;
    Status first_error = Status::OK();
    // Deterministic merge: every run arrives pre-sorted in canonical
    // MatchOrderLess order (the workers sort during the barrier, in
    // parallel), so a merge tree yields the full canonical order — the
    // emitted sequence is independent of shard count and worker
    // scheduling, byte-identical to sorted serial output. Two distinct
    // matches never compare equal across shards (partitions are disjoint),
    // so the order is total on the actual data. In sink mode the leftover
    // sealed runs and the ingest-side remainder join the merge; everything
    // remaining sorts after the matches already emitted incrementally
    // (they all start at or above the last emission threshold).
    std::vector<std::vector<Match>> runs = std::move(merge_runs);
    merge_runs.clear();
    for (auto& shard : shards) {
      if (first_error.ok() && !shard->status.ok()) {
        first_error = shard->status;
      }
      {
        std::lock_guard<std::mutex> lock(shard->runs_mu);
        for (auto& run : shard->sealed_runs) {
          if (!run.empty()) runs.push_back(std::move(run));
        }
        shard->sealed_runs.clear();
      }
      if (!shard->matches.empty()) {
        runs.push_back(std::move(shard->matches));
      }
      shard->matches = {};
    }
    std::vector<Match> merged = MergeSortedRuns(std::move(runs));
    if (options.sink != nullptr) {
      for (Match& match : merged) {
        options.sink(std::move(match));
      }
    } else if (!merged.empty()) {
      out->insert(out->end(), std::make_move_iterator(merged.begin()),
                  std::make_move_iterator(merged.end()));
    }
    buffered_matches.Reset();

    last_stats = ParallelStats{};
    last_stats.events_ingested = events_ingested;
    last_stats.batches_enqueued = batches_enqueued;
    last_stats.max_queue_depth = max_queue_depth;
    last_stats.matches_emitted_early = matches_emitted_early;
    last_stats.max_buffered_matches = max_buffered.max();
    last_stats.merge_seconds = merge_watch.ElapsedSeconds();
    if (rebalancer != nullptr) last_stats.rebalancer = rebalancer->stats();
    for (auto& shard : shards) {
      last_stats.partitions_created += shard->stats.partitions_created;
      last_stats.partitions_evicted += shard->stats.partitions_evicted;
      last_stats.matches_emitted += shard->stats.matches_emitted;
      ShardStats snapshot = shard->stats;
      snapshot.busy_nanos = shard->busy_nanos.value();
      last_stats.shards.push_back(snapshot);
    }
    return first_error;
  }

  void ResetAll() {
    Barrier(EventBatch::Kind::kReset);
    if (rebalancer != nullptr) rebalancer->Reset();
    has_watermark = false;
    watermark = 0;
    events_ingested = 0;
    batches_enqueued = 0;
    max_queue_depth = 0;
    merge_runs.clear();
    next_emit_at = 0;
    matches_emitted_early = 0;
    buffered_matches.Reset();
    max_buffered.Reset();
    std::fill(fed.begin(), fed.end(), false);
    last_stats = ParallelStats{};
  }

  // ---- Checkpoint / restore ---------------------------------------------

  /// Serializes the complete runtime state after a kSync barrier. Deferred
  /// worker-side state is drained to its ingest-side home first (sealed
  /// runs into the merger, per-key load samples into the rebalancer) —
  /// both drains are behavior-preserving, they only move work the next
  /// emission or sampling round would have done anyway — so every fact has
  /// exactly one home in the payload.
  Status CheckpointAll(std::string* out) {
    Barrier(EventBatch::Kind::kSync);
    for (auto& shard : shards) {
      if (!shard->status.ok()) return shard->status;
    }
    for (auto& shard : shards) {
      std::lock_guard<std::mutex> lock(shard->runs_mu);
      for (auto& run : shard->sealed_runs) {
        if (!run.empty()) merge_runs.push_back(std::move(run));
      }
      shard->sealed_runs.clear();
    }
    if (rebalancer != nullptr) {
      for (auto& shard : shards) {
        std::map<Value, KeyLoadDelta, ValueOrderLess> key_load;
        {
          std::lock_guard<std::mutex> lock(shard->key_load_mu);
          key_load.swap(shard->key_load);
        }
        for (const auto& [key, load] : key_load) {
          rebalancer->ObserveKeyLoad(key, load.work, load.open_instances);
        }
      }
    }
    const Schema& schema = automaton->pattern().schema();
    storage::PutBool(out, has_watermark);
    storage::PutSigned(out, watermark);
    storage::PutSigned(out, events_ingested);
    storage::PutSigned(out, batches_enqueued);
    storage::PutSigned(out, max_queue_depth);
    storage::PutSigned(out, next_emit_at);
    storage::PutSigned(out, matches_emitted_early);
    storage::PutSigned(out, buffered_matches.value());
    storage::PutSigned(out, max_buffered.max());
    storage::PutCount(out, fed.size());
    for (bool shard_fed : fed) storage::PutBool(out, shard_fed);
    storage::PutCount(out, merge_runs.size());
    for (const std::vector<Match>& run : merge_runs) {
      storage::PutCount(out, run.size());
      for (const Match& match : run) CheckpointMatch(match, schema, out);
    }
    storage::PutBool(out, rebalancer != nullptr);
    if (rebalancer != nullptr) rebalancer->Checkpoint(out);
    storage::PutCount(out, shards.size());
    for (auto& shard : shards) {
      storage::PutSigned(
          out, shard->published.load(std::memory_order_acquire));
      storage::PutCount(out, shard->partitions.size());
      for (const auto& [key, partition] : shard->partitions) {
        storage::PutValue(out, key);
        storage::PutSigned(out, partition.last_seen);
        partition.matcher.Checkpoint(out);
      }
      storage::PutCount(out, shard->matches.size());
      for (const Match& match : shard->matches) {
        CheckpointMatch(match, schema, out);
      }
      storage::PutSigned(out, shard->stats.events_processed);
      storage::PutSigned(out, shard->stats.batches_processed);
      storage::PutSigned(out, shard->stats.partitions_created);
      storage::PutSigned(out, shard->stats.partitions_evicted);
      storage::PutSigned(out, shard->stats.max_resident_partitions);
      storage::PutSigned(out, shard->stats.max_queue_depth);
      storage::PutSigned(out, shard->stats.matches_emitted);
      storage::PutSigned(out, shard->busy_nanos.value());
    }
    return Status::OK();
  }

  /// Rebuilds the runtime from a CheckpointAll payload. Worker-owned state
  /// is rewritten from the ingest thread inside the safe window between the
  /// kReset acknowledgement (from ResetAll) and the next queue Push.
  Status RestoreAll(const char** p, const char* limit) {
    ResetAll();
    Status s = [&]() -> Status {
      const Schema& schema = automaton->pattern().schema();
      SES_RETURN_IF_ERROR(storage::GetBool(p, limit, &has_watermark));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &watermark));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &events_ingested));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &batches_enqueued));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &max_queue_depth));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &next_emit_at));
      SES_RETURN_IF_ERROR(
          storage::GetSigned(p, limit, &matches_emitted_early));
      int64_t buffered = 0;
      int64_t max_buffered_seen = 0;
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &buffered));
      SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &max_buffered_seen));
      buffered_matches.Increment(buffered);
      max_buffered.Observe(max_buffered_seen);
      uint64_t fed_count = 0;
      SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &fed_count));
      if (fed_count != fed.size()) {
        return Status::Corruption(
            "checkpoint shard count does not match this runtime");
      }
      for (size_t i = 0; i < fed.size(); ++i) {
        bool shard_fed = false;
        SES_RETURN_IF_ERROR(storage::GetBool(p, limit, &shard_fed));
        fed[i] = shard_fed;
      }
      uint64_t num_runs = 0;
      SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_runs));
      for (uint64_t i = 0; i < num_runs; ++i) {
        uint64_t run_size = 0;
        SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &run_size));
        std::vector<Match> run;
        run.reserve(run_size);
        for (uint64_t j = 0; j < run_size; ++j) {
          Match match;
          SES_RETURN_IF_ERROR(RestoreMatch(p, limit, schema, &match));
          run.push_back(std::move(match));
        }
        merge_runs.push_back(std::move(run));
      }
      bool has_rebalancer = false;
      SES_RETURN_IF_ERROR(storage::GetBool(p, limit, &has_rebalancer));
      if (has_rebalancer != (rebalancer != nullptr)) {
        return Status::Corruption(
            "checkpoint rebalancer presence does not match this runtime");
      }
      if (rebalancer != nullptr) {
        SES_RETURN_IF_ERROR(rebalancer->Restore(p, limit));
      }
      uint64_t shard_count = 0;
      SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &shard_count));
      if (shard_count != shards.size()) {
        return Status::Corruption(
            "checkpoint shard count does not match this runtime");
      }
      for (auto& shard : shards) {
        int64_t published = 0;
        SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &published));
        shard->published.store(published, std::memory_order_release);
        uint64_t num_partitions = 0;
        SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_partitions));
        for (uint64_t i = 0; i < num_partitions; ++i) {
          Value key;
          SES_RETURN_IF_ERROR(storage::GetValue(p, limit, &key));
          int64_t last_seen = 0;
          SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &last_seen));
          auto [it, inserted] = shard->partitions.emplace(
              std::move(key),
              Partition{Matcher(automaton, options.matcher, filter), 0});
          if (!inserted) {
            return Status::Corruption(
                "checkpoint shard holds a duplicate partition key");
          }
          it->second.last_seen = last_seen;
          SES_RETURN_IF_ERROR(it->second.matcher.Restore(p, limit));
        }
        uint64_t num_matches = 0;
        SES_RETURN_IF_ERROR(storage::GetCount(p, limit, &num_matches));
        shard->matches.reserve(num_matches);
        for (uint64_t i = 0; i < num_matches; ++i) {
          Match match;
          SES_RETURN_IF_ERROR(RestoreMatch(p, limit, schema, &match));
          shard->matches.push_back(std::move(match));
        }
        SES_RETURN_IF_ERROR(
            storage::GetSigned(p, limit, &shard->stats.events_processed));
        SES_RETURN_IF_ERROR(
            storage::GetSigned(p, limit, &shard->stats.batches_processed));
        SES_RETURN_IF_ERROR(
            storage::GetSigned(p, limit, &shard->stats.partitions_created));
        SES_RETURN_IF_ERROR(
            storage::GetSigned(p, limit, &shard->stats.partitions_evicted));
        SES_RETURN_IF_ERROR(storage::GetSigned(
            p, limit, &shard->stats.max_resident_partitions));
        SES_RETURN_IF_ERROR(
            storage::GetSigned(p, limit, &shard->stats.max_queue_depth));
        SES_RETURN_IF_ERROR(
            storage::GetSigned(p, limit, &shard->stats.matches_emitted));
        int64_t busy = 0;
        SES_RETURN_IF_ERROR(storage::GetSigned(p, limit, &busy));
        shard->busy_nanos.Increment(busy);
      }
      return Status::OK();
    }();
    if (!s.ok()) ResetAll();
    return s;
  }
};

Result<ParallelPartitionedMatcher> ParallelPartitionedMatcher::Create(
    const Pattern& pattern, int attribute, ParallelOptions options) {
  return Create(CompileAutomaton(pattern), attribute, std::move(options),
                nullptr);
}

Result<ParallelPartitionedMatcher> ParallelPartitionedMatcher::Create(
    std::shared_ptr<const SesAutomaton> automaton, int attribute,
    ParallelOptions options, std::shared_ptr<const EventPreFilter> filter) {
  const Pattern& pattern = automaton->pattern();
  if (attribute < 0 || attribute >= pattern.schema().num_attributes()) {
    return Status::InvalidArgument("partition attribute index out of range");
  }
  if (pattern.schema().attribute(attribute).type == ValueType::kDouble) {
    return Status::InvalidArgument(
        "DOUBLE attributes cannot be used as partition keys");
  }
  auto impl = std::make_unique<Impl>();
  impl->automaton = std::move(automaton);
  impl->filter = std::move(filter);
  impl->attribute = attribute;
  options.num_shards = std::max(options.num_shards, 1);
  options.batch_size = std::max<size_t>(options.batch_size, 1);
  options.emit_interval_events = std::max<int64_t>(options.emit_interval_events, 1);
  impl->options = std::move(options);
  impl->effective_timeout =
      impl->options.idle_timeout < 0
          ? -1
          : std::max(impl->options.idle_timeout, impl->automaton->window());
  // Incremental emission needs both a consumer and the eviction guarantee:
  // with eviction off, an idle partition may hold an arbitrarily old pending
  // match, so no prefix of the stream is ever provably complete.
  impl->incremental =
      impl->options.sink != nullptr && impl->effective_timeout >= 0;
  impl->shards.reserve(static_cast<size_t>(impl->options.num_shards));
  for (int i = 0; i < impl->options.num_shards; ++i) {
    impl->shards.push_back(
        std::make_unique<Impl::Shard>(impl->options.queue_capacity));
  }
  impl->pending.resize(impl->shards.size());
  impl->fed.assign(impl->shards.size(), false);
  if (impl->options.rebalance.enabled) {
    impl->rebalancer = std::make_unique<ShardRebalancer>(
        impl->options.num_shards, impl->automaton->window(),
        impl->options.rebalance);
    impl->track_key_load = true;
  }
  impl->Start();
  return ParallelPartitionedMatcher(std::move(impl));
}

ParallelPartitionedMatcher::ParallelPartitionedMatcher(
    std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ParallelPartitionedMatcher::~ParallelPartitionedMatcher() = default;
ParallelPartitionedMatcher::ParallelPartitionedMatcher(
    ParallelPartitionedMatcher&&) noexcept = default;
ParallelPartitionedMatcher& ParallelPartitionedMatcher::operator=(
    ParallelPartitionedMatcher&&) noexcept = default;

Status ParallelPartitionedMatcher::Push(const Event& event) {
  return impl_->Ingest(event);
}

Status ParallelPartitionedMatcher::PushBatch(std::span<const Event> events) {
  return impl_->IngestBatch(events);
}

Status ParallelPartitionedMatcher::PushColumnar(const ColumnarBatch& batch,
                                                const uint64_t* pass_bitmap) {
  return impl_->IngestColumnar(batch, pass_bitmap);
}

Status ParallelPartitionedMatcher::RunRelation(const EventRelation& relation) {
  SES_RETURN_IF_ERROR(relation.ValidateTotalOrder());
  std::span<const Event> events(relation.events());
  // Chunk so workers drain earlier slabs while later ones are still being
  // routed; a few batches per shard per chunk keeps the pipeline full
  // without unbounded pending buffers.
  size_t chunk =
      std::max<size_t>(impl_->options.batch_size * impl_->shards.size() * 4,
                       impl_->options.batch_size);
  for (size_t pos = 0; pos < events.size(); pos += chunk) {
    SES_RETURN_IF_ERROR(impl_->IngestBatch(
        events.subspan(pos, std::min(chunk, events.size() - pos))));
  }
  return Status::OK();
}

Status ParallelPartitionedMatcher::Flush(std::vector<Match>* out) {
  return impl_->Flush(out);
}

void ParallelPartitionedMatcher::Reset() { impl_->ResetAll(); }

Status ParallelPartitionedMatcher::Checkpoint(std::string* out) {
  return impl_->CheckpointAll(out);
}

Status ParallelPartitionedMatcher::Restore(const char** p, const char* limit) {
  return impl_->RestoreAll(p, limit);
}

const ParallelStats& ParallelPartitionedMatcher::stats() const {
  return impl_->last_stats;
}

const SesAutomaton& ParallelPartitionedMatcher::automaton() const {
  return *impl_->automaton;
}

int ParallelPartitionedMatcher::num_shards() const {
  return static_cast<int>(impl_->shards.size());
}

Result<std::vector<Match>> ParallelPartitionedMatchRelation(
    const Pattern& pattern, const EventRelation& relation, int attribute,
    ParallelOptions options, ParallelStats* stats) {
  if (attribute < 0) {
    SES_ASSIGN_OR_RETURN(attribute, FindPartitionAttribute(pattern));
  }
  SES_ASSIGN_OR_RETURN(
      ParallelPartitionedMatcher matcher,
      ParallelPartitionedMatcher::Create(pattern, attribute, options));
  SES_RETURN_IF_ERROR(matcher.RunRelation(relation));
  std::vector<Match> matches;
  SES_RETURN_IF_ERROR(matcher.Flush(&matches));
  if (stats != nullptr) *stats = matcher.stats();
  return matches;
}

}  // namespace ses::exec
