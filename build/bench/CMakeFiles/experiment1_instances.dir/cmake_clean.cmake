file(REMOVE_RECURSE
  "CMakeFiles/experiment1_instances.dir/experiment1_instances.cc.o"
  "CMakeFiles/experiment1_instances.dir/experiment1_instances.cc.o.d"
  "experiment1_instances"
  "experiment1_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment1_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
