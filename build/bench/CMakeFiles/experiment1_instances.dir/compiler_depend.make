# Empty compiler generated dependencies file for experiment1_instances.
# This may be replaced when dependencies are built.
