
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/experiment1_instances.cc" "bench/CMakeFiles/experiment1_instances.dir/experiment1_instances.cc.o" "gcc" "bench/CMakeFiles/experiment1_instances.dir/experiment1_instances.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ses_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
