file(REMOVE_RECURSE
  "CMakeFiles/experiment2_window.dir/experiment2_window.cc.o"
  "CMakeFiles/experiment2_window.dir/experiment2_window.cc.o.d"
  "experiment2_window"
  "experiment2_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment2_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
