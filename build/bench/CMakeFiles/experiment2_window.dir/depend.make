# Empty dependencies file for experiment2_window.
# This may be replaced when dependencies are built.
