# Empty compiler generated dependencies file for partition_ablation.
# This may be replaced when dependencies are built.
