# Empty dependencies file for partition_ablation.
# This may be replaced when dependencies are built.
