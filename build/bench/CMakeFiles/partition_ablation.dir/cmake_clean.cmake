file(REMOVE_RECURSE
  "CMakeFiles/partition_ablation.dir/partition_ablation.cc.o"
  "CMakeFiles/partition_ablation.dir/partition_ablation.cc.o.d"
  "partition_ablation"
  "partition_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
