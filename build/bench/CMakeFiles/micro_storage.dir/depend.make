# Empty dependencies file for micro_storage.
# This may be replaced when dependencies are built.
