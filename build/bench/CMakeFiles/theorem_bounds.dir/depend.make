# Empty dependencies file for theorem_bounds.
# This may be replaced when dependencies are built.
