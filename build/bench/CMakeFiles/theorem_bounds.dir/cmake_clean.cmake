file(REMOVE_RECURSE
  "CMakeFiles/theorem_bounds.dir/theorem_bounds.cc.o"
  "CMakeFiles/theorem_bounds.dir/theorem_bounds.cc.o.d"
  "theorem_bounds"
  "theorem_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
