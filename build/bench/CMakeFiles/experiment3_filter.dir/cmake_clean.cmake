file(REMOVE_RECURSE
  "CMakeFiles/experiment3_filter.dir/experiment3_filter.cc.o"
  "CMakeFiles/experiment3_filter.dir/experiment3_filter.cc.o.d"
  "experiment3_filter"
  "experiment3_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment3_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
