# Empty dependencies file for experiment3_filter.
# This may be replaced when dependencies are built.
