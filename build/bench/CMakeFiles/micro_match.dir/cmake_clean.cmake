file(REMOVE_RECURSE
  "CMakeFiles/micro_match.dir/micro_match.cc.o"
  "CMakeFiles/micro_match.dir/micro_match.cc.o.d"
  "micro_match"
  "micro_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
