file(REMOVE_RECURSE
  "CMakeFiles/micro_build.dir/micro_build.cc.o"
  "CMakeFiles/micro_build.dir/micro_build.cc.o.d"
  "micro_build"
  "micro_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
