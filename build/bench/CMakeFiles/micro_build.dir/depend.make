# Empty dependencies file for micro_build.
# This may be replaced when dependencies are built.
