# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/running_example_test[1]_include.cmake")
include("/root/repo/build/tests/automaton_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/definition_two_test[1]_include.cmake")
include("/root/repo/build/tests/partitioned_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/optional_test[1]_include.cmake")
include("/root/repo/build/tests/offset_condition_test[1]_include.cmake")
include("/root/repo/build/tests/instance_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/branching_test[1]_include.cmake")
