# Empty dependencies file for instance_test.
# This may be replaced when dependencies are built.
