file(REMOVE_RECURSE
  "CMakeFiles/instance_test.dir/instance_test.cc.o"
  "CMakeFiles/instance_test.dir/instance_test.cc.o.d"
  "instance_test"
  "instance_test.pdb"
  "instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
