file(REMOVE_RECURSE
  "CMakeFiles/offset_condition_test.dir/offset_condition_test.cc.o"
  "CMakeFiles/offset_condition_test.dir/offset_condition_test.cc.o.d"
  "offset_condition_test"
  "offset_condition_test.pdb"
  "offset_condition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offset_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
