# Empty compiler generated dependencies file for offset_condition_test.
# This may be replaced when dependencies are built.
