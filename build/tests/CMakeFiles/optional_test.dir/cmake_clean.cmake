file(REMOVE_RECURSE
  "CMakeFiles/optional_test.dir/optional_test.cc.o"
  "CMakeFiles/optional_test.dir/optional_test.cc.o.d"
  "optional_test"
  "optional_test.pdb"
  "optional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
