# Empty dependencies file for optional_test.
# This may be replaced when dependencies are built.
