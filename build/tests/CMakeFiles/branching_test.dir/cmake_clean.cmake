file(REMOVE_RECURSE
  "CMakeFiles/branching_test.dir/branching_test.cc.o"
  "CMakeFiles/branching_test.dir/branching_test.cc.o.d"
  "branching_test"
  "branching_test.pdb"
  "branching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
