# Empty compiler generated dependencies file for branching_test.
# This may be replaced when dependencies are built.
