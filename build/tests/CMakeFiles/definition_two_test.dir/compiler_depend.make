# Empty compiler generated dependencies file for definition_two_test.
# This may be replaced when dependencies are built.
