file(REMOVE_RECURSE
  "CMakeFiles/definition_two_test.dir/definition_two_test.cc.o"
  "CMakeFiles/definition_two_test.dir/definition_two_test.cc.o.d"
  "definition_two_test"
  "definition_two_test.pdb"
  "definition_two_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/definition_two_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
