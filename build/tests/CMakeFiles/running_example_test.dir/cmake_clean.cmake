file(REMOVE_RECURSE
  "CMakeFiles/running_example_test.dir/running_example_test.cc.o"
  "CMakeFiles/running_example_test.dir/running_example_test.cc.o.d"
  "running_example_test"
  "running_example_test.pdb"
  "running_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/running_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
