# Empty dependencies file for running_example_test.
# This may be replaced when dependencies are built.
