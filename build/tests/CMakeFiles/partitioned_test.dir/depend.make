# Empty dependencies file for partitioned_test.
# This may be replaced when dependencies are built.
