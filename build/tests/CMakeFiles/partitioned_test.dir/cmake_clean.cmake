file(REMOVE_RECURSE
  "CMakeFiles/partitioned_test.dir/partitioned_test.cc.o"
  "CMakeFiles/partitioned_test.dir/partitioned_test.cc.o.d"
  "partitioned_test"
  "partitioned_test.pdb"
  "partitioned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
