file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_test.dir/exhaustive_test.cc.o"
  "CMakeFiles/exhaustive_test.dir/exhaustive_test.cc.o.d"
  "exhaustive_test"
  "exhaustive_test.pdb"
  "exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
