# Empty compiler generated dependencies file for automaton_test.
# This may be replaced when dependencies are built.
