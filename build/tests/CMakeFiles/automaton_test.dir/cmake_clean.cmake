file(REMOVE_RECURSE
  "CMakeFiles/automaton_test.dir/automaton_test.cc.o"
  "CMakeFiles/automaton_test.dir/automaton_test.cc.o.d"
  "automaton_test"
  "automaton_test.pdb"
  "automaton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
