# Empty compiler generated dependencies file for ses_baseline.
# This may be replaced when dependencies are built.
