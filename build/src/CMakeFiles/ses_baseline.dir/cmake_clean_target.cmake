file(REMOVE_RECURSE
  "libses_baseline.a"
)
