file(REMOVE_RECURSE
  "CMakeFiles/ses_baseline.dir/baseline/brute_force.cc.o"
  "CMakeFiles/ses_baseline.dir/baseline/brute_force.cc.o.d"
  "CMakeFiles/ses_baseline.dir/baseline/definition_two.cc.o"
  "CMakeFiles/ses_baseline.dir/baseline/definition_two.cc.o.d"
  "CMakeFiles/ses_baseline.dir/baseline/permutations.cc.o"
  "CMakeFiles/ses_baseline.dir/baseline/permutations.cc.o.d"
  "CMakeFiles/ses_baseline.dir/baseline/reference_matcher.cc.o"
  "CMakeFiles/ses_baseline.dir/baseline/reference_matcher.cc.o.d"
  "libses_baseline.a"
  "libses_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
