
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/chemotherapy.cc" "src/CMakeFiles/ses_workload.dir/workload/chemotherapy.cc.o" "gcc" "src/CMakeFiles/ses_workload.dir/workload/chemotherapy.cc.o.d"
  "/root/repo/src/workload/generic_generator.cc" "src/CMakeFiles/ses_workload.dir/workload/generic_generator.cc.o" "gcc" "src/CMakeFiles/ses_workload.dir/workload/generic_generator.cc.o.d"
  "/root/repo/src/workload/paper_fixture.cc" "src/CMakeFiles/ses_workload.dir/workload/paper_fixture.cc.o" "gcc" "src/CMakeFiles/ses_workload.dir/workload/paper_fixture.cc.o.d"
  "/root/repo/src/workload/replicate.cc" "src/CMakeFiles/ses_workload.dir/workload/replicate.cc.o" "gcc" "src/CMakeFiles/ses_workload.dir/workload/replicate.cc.o.d"
  "/root/repo/src/workload/window.cc" "src/CMakeFiles/ses_workload.dir/workload/window.cc.o" "gcc" "src/CMakeFiles/ses_workload.dir/workload/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ses_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
