file(REMOVE_RECURSE
  "CMakeFiles/ses_workload.dir/workload/chemotherapy.cc.o"
  "CMakeFiles/ses_workload.dir/workload/chemotherapy.cc.o.d"
  "CMakeFiles/ses_workload.dir/workload/generic_generator.cc.o"
  "CMakeFiles/ses_workload.dir/workload/generic_generator.cc.o.d"
  "CMakeFiles/ses_workload.dir/workload/paper_fixture.cc.o"
  "CMakeFiles/ses_workload.dir/workload/paper_fixture.cc.o.d"
  "CMakeFiles/ses_workload.dir/workload/replicate.cc.o"
  "CMakeFiles/ses_workload.dir/workload/replicate.cc.o.d"
  "CMakeFiles/ses_workload.dir/workload/window.cc.o"
  "CMakeFiles/ses_workload.dir/workload/window.cc.o.d"
  "libses_workload.a"
  "libses_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
