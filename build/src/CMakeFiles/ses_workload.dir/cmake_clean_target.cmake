file(REMOVE_RECURSE
  "libses_workload.a"
)
