# Empty dependencies file for ses_workload.
# This may be replaced when dependencies are built.
