file(REMOVE_RECURSE
  "libses_common.a"
)
