# Empty compiler generated dependencies file for ses_common.
# This may be replaced when dependencies are built.
