
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/ses_common.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/ses_common.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ses_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ses_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/ses_common.dir/common/random.cc.o" "gcc" "src/CMakeFiles/ses_common.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ses_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ses_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/ses_common.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/ses_common.dir/common/strings.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/ses_common.dir/common/time.cc.o" "gcc" "src/CMakeFiles/ses_common.dir/common/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
