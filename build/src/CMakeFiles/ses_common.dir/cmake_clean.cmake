file(REMOVE_RECURSE
  "CMakeFiles/ses_common.dir/common/crc32c.cc.o"
  "CMakeFiles/ses_common.dir/common/crc32c.cc.o.d"
  "CMakeFiles/ses_common.dir/common/logging.cc.o"
  "CMakeFiles/ses_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ses_common.dir/common/random.cc.o"
  "CMakeFiles/ses_common.dir/common/random.cc.o.d"
  "CMakeFiles/ses_common.dir/common/status.cc.o"
  "CMakeFiles/ses_common.dir/common/status.cc.o.d"
  "CMakeFiles/ses_common.dir/common/strings.cc.o"
  "CMakeFiles/ses_common.dir/common/strings.cc.o.d"
  "CMakeFiles/ses_common.dir/common/time.cc.o"
  "CMakeFiles/ses_common.dir/common/time.cc.o.d"
  "libses_common.a"
  "libses_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
