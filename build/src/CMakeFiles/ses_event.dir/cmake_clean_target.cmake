file(REMOVE_RECURSE
  "libses_event.a"
)
