
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/csv.cc" "src/CMakeFiles/ses_event.dir/event/csv.cc.o" "gcc" "src/CMakeFiles/ses_event.dir/event/csv.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/ses_event.dir/event/event.cc.o" "gcc" "src/CMakeFiles/ses_event.dir/event/event.cc.o.d"
  "/root/repo/src/event/relation.cc" "src/CMakeFiles/ses_event.dir/event/relation.cc.o" "gcc" "src/CMakeFiles/ses_event.dir/event/relation.cc.o.d"
  "/root/repo/src/event/schema.cc" "src/CMakeFiles/ses_event.dir/event/schema.cc.o" "gcc" "src/CMakeFiles/ses_event.dir/event/schema.cc.o.d"
  "/root/repo/src/event/value.cc" "src/CMakeFiles/ses_event.dir/event/value.cc.o" "gcc" "src/CMakeFiles/ses_event.dir/event/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ses_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
