file(REMOVE_RECURSE
  "CMakeFiles/ses_event.dir/event/csv.cc.o"
  "CMakeFiles/ses_event.dir/event/csv.cc.o.d"
  "CMakeFiles/ses_event.dir/event/event.cc.o"
  "CMakeFiles/ses_event.dir/event/event.cc.o.d"
  "CMakeFiles/ses_event.dir/event/relation.cc.o"
  "CMakeFiles/ses_event.dir/event/relation.cc.o.d"
  "CMakeFiles/ses_event.dir/event/schema.cc.o"
  "CMakeFiles/ses_event.dir/event/schema.cc.o.d"
  "CMakeFiles/ses_event.dir/event/value.cc.o"
  "CMakeFiles/ses_event.dir/event/value.cc.o.d"
  "libses_event.a"
  "libses_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
