# Empty compiler generated dependencies file for ses_event.
# This may be replaced when dependencies are built.
