# Empty compiler generated dependencies file for ses_metrics.
# This may be replaced when dependencies are built.
