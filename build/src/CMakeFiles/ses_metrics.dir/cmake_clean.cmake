file(REMOVE_RECURSE
  "CMakeFiles/ses_metrics.dir/metrics/metrics.cc.o"
  "CMakeFiles/ses_metrics.dir/metrics/metrics.cc.o.d"
  "libses_metrics.a"
  "libses_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
