file(REMOVE_RECURSE
  "libses_metrics.a"
)
