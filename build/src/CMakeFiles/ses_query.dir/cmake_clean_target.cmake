file(REMOVE_RECURSE
  "libses_query.a"
)
