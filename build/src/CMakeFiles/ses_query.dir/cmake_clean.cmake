file(REMOVE_RECURSE
  "CMakeFiles/ses_query.dir/query/condition.cc.o"
  "CMakeFiles/ses_query.dir/query/condition.cc.o.d"
  "CMakeFiles/ses_query.dir/query/lexer.cc.o"
  "CMakeFiles/ses_query.dir/query/lexer.cc.o.d"
  "CMakeFiles/ses_query.dir/query/parser.cc.o"
  "CMakeFiles/ses_query.dir/query/parser.cc.o.d"
  "CMakeFiles/ses_query.dir/query/pattern.cc.o"
  "CMakeFiles/ses_query.dir/query/pattern.cc.o.d"
  "CMakeFiles/ses_query.dir/query/pattern_builder.cc.o"
  "CMakeFiles/ses_query.dir/query/pattern_builder.cc.o.d"
  "CMakeFiles/ses_query.dir/query/unparse.cc.o"
  "CMakeFiles/ses_query.dir/query/unparse.cc.o.d"
  "CMakeFiles/ses_query.dir/query/variable.cc.o"
  "CMakeFiles/ses_query.dir/query/variable.cc.o.d"
  "libses_query.a"
  "libses_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
