
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/condition.cc" "src/CMakeFiles/ses_query.dir/query/condition.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/condition.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/ses_query.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/ses_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/pattern.cc" "src/CMakeFiles/ses_query.dir/query/pattern.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/pattern.cc.o.d"
  "/root/repo/src/query/pattern_builder.cc" "src/CMakeFiles/ses_query.dir/query/pattern_builder.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/pattern_builder.cc.o.d"
  "/root/repo/src/query/unparse.cc" "src/CMakeFiles/ses_query.dir/query/unparse.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/unparse.cc.o.d"
  "/root/repo/src/query/variable.cc" "src/CMakeFiles/ses_query.dir/query/variable.cc.o" "gcc" "src/CMakeFiles/ses_query.dir/query/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ses_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
