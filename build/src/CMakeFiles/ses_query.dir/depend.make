# Empty dependencies file for ses_query.
# This may be replaced when dependencies are built.
