file(REMOVE_RECURSE
  "libses_core.a"
)
