
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/automaton.cc" "src/CMakeFiles/ses_core.dir/core/automaton.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/automaton.cc.o.d"
  "/root/repo/src/core/automaton_builder.cc" "src/CMakeFiles/ses_core.dir/core/automaton_builder.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/automaton_builder.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/ses_core.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/executor.cc.o.d"
  "/root/repo/src/core/filter.cc" "src/CMakeFiles/ses_core.dir/core/filter.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/filter.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/ses_core.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/instance.cc.o.d"
  "/root/repo/src/core/match.cc" "src/CMakeFiles/ses_core.dir/core/match.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/match.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/CMakeFiles/ses_core.dir/core/matcher.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/matcher.cc.o.d"
  "/root/repo/src/core/partitioned.cc" "src/CMakeFiles/ses_core.dir/core/partitioned.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/partitioned.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/ses_core.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/ses_core.dir/core/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ses_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
