file(REMOVE_RECURSE
  "CMakeFiles/ses_core.dir/core/automaton.cc.o"
  "CMakeFiles/ses_core.dir/core/automaton.cc.o.d"
  "CMakeFiles/ses_core.dir/core/automaton_builder.cc.o"
  "CMakeFiles/ses_core.dir/core/automaton_builder.cc.o.d"
  "CMakeFiles/ses_core.dir/core/executor.cc.o"
  "CMakeFiles/ses_core.dir/core/executor.cc.o.d"
  "CMakeFiles/ses_core.dir/core/filter.cc.o"
  "CMakeFiles/ses_core.dir/core/filter.cc.o.d"
  "CMakeFiles/ses_core.dir/core/instance.cc.o"
  "CMakeFiles/ses_core.dir/core/instance.cc.o.d"
  "CMakeFiles/ses_core.dir/core/match.cc.o"
  "CMakeFiles/ses_core.dir/core/match.cc.o.d"
  "CMakeFiles/ses_core.dir/core/matcher.cc.o"
  "CMakeFiles/ses_core.dir/core/matcher.cc.o.d"
  "CMakeFiles/ses_core.dir/core/partitioned.cc.o"
  "CMakeFiles/ses_core.dir/core/partitioned.cc.o.d"
  "CMakeFiles/ses_core.dir/core/trace.cc.o"
  "CMakeFiles/ses_core.dir/core/trace.cc.o.d"
  "libses_core.a"
  "libses_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
