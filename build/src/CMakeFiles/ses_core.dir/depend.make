# Empty dependencies file for ses_core.
# This may be replaced when dependencies are built.
