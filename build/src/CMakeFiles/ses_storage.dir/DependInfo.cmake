
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/event_store.cc" "src/CMakeFiles/ses_storage.dir/storage/event_store.cc.o" "gcc" "src/CMakeFiles/ses_storage.dir/storage/event_store.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/ses_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/ses_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/table_format.cc" "src/CMakeFiles/ses_storage.dir/storage/table_format.cc.o" "gcc" "src/CMakeFiles/ses_storage.dir/storage/table_format.cc.o.d"
  "/root/repo/src/storage/table_reader.cc" "src/CMakeFiles/ses_storage.dir/storage/table_reader.cc.o" "gcc" "src/CMakeFiles/ses_storage.dir/storage/table_reader.cc.o.d"
  "/root/repo/src/storage/table_writer.cc" "src/CMakeFiles/ses_storage.dir/storage/table_writer.cc.o" "gcc" "src/CMakeFiles/ses_storage.dir/storage/table_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ses_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ses_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
