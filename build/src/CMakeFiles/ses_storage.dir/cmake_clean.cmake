file(REMOVE_RECURSE
  "CMakeFiles/ses_storage.dir/storage/event_store.cc.o"
  "CMakeFiles/ses_storage.dir/storage/event_store.cc.o.d"
  "CMakeFiles/ses_storage.dir/storage/page.cc.o"
  "CMakeFiles/ses_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/ses_storage.dir/storage/table_format.cc.o"
  "CMakeFiles/ses_storage.dir/storage/table_format.cc.o.d"
  "CMakeFiles/ses_storage.dir/storage/table_reader.cc.o"
  "CMakeFiles/ses_storage.dir/storage/table_reader.cc.o.d"
  "CMakeFiles/ses_storage.dir/storage/table_writer.cc.o"
  "CMakeFiles/ses_storage.dir/storage/table_writer.cc.o.d"
  "libses_storage.a"
  "libses_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
