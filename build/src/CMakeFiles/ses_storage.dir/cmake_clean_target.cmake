file(REMOVE_RECURSE
  "libses_storage.a"
)
