# Empty dependencies file for ses_storage.
# This may be replaced when dependencies are built.
