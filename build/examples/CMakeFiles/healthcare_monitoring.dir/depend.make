# Empty dependencies file for healthcare_monitoring.
# This may be replaced when dependencies are built.
