file(REMOVE_RECURSE
  "CMakeFiles/healthcare_monitoring.dir/healthcare_monitoring.cpp.o"
  "CMakeFiles/healthcare_monitoring.dir/healthcare_monitoring.cpp.o.d"
  "healthcare_monitoring"
  "healthcare_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
