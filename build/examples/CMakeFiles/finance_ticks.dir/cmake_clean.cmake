file(REMOVE_RECURSE
  "CMakeFiles/finance_ticks.dir/finance_ticks.cpp.o"
  "CMakeFiles/finance_ticks.dir/finance_ticks.cpp.o.d"
  "finance_ticks"
  "finance_ticks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_ticks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
