# Empty dependencies file for finance_ticks.
# This may be replaced when dependencies are built.
