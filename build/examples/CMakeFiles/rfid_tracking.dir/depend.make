# Empty dependencies file for rfid_tracking.
# This may be replaced when dependencies are built.
