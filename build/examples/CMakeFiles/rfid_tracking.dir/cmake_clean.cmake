file(REMOVE_RECURSE
  "CMakeFiles/rfid_tracking.dir/rfid_tracking.cpp.o"
  "CMakeFiles/rfid_tracking.dir/rfid_tracking.cpp.o.d"
  "rfid_tracking"
  "rfid_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
