# Empty compiler generated dependencies file for ses_cli.
# This may be replaced when dependencies are built.
