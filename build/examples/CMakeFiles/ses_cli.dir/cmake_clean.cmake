file(REMOVE_RECURSE
  "CMakeFiles/ses_cli.dir/ses_cli.cpp.o"
  "CMakeFiles/ses_cli.dir/ses_cli.cpp.o.d"
  "ses_cli"
  "ses_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
