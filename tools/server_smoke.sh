#!/usr/bin/env bash
# End-to-end smoke for the network server (docs/SERVER.md): starts a real
# ses_server process, drives it with ses_loadgen over loopback TCP, then
# replays every dumped client stream through ses_cli and diffs the match
# listings byte for byte. The server is the system under test — in CI it
# is built with ASan+UBSan, so a single out-of-bounds read in the codec or
# connection handling fails the job even when the diffs happen to pass.
#
# Each loadgen client uses a private label alphabet ("A3"/"B3" for client
# 3), so its match set must equal a standalone single-pattern ses_cli run
# over its own dumped stream; both sides print the same
# `match,variable,event,T` CSV, so plain diff is the whole check.
#
# Usage: tools/server_smoke.sh [CLIENTS] [EVENTS]
#   CLIENTS  concurrent loadgen connections (default 8)
#   EVENTS   events per client (default 2000)
#
# Environment:
#   SES_SERVER         path to ses_server  (default ./build/examples/ses_server)
#   SES_LOADGEN        path to ses_loadgen (default ./build/examples/ses_loadgen)
#   SES_CLI            path to ses_cli     (default ./build/examples/ses_cli)
#   SES_LOADGEN_FLAGS  extra loadgen flags, e.g. "--columnar" or "--batch 64"
#   SES_KEEP_DIR       on failure, copy the workdir (logs, dumps, diffs) here
#                      for the CI artifact upload
#
# Exit status: 0 when every client's wire-delivered matches reproduced the
# ses_cli reference and the server shut down cleanly, non-zero otherwise.
# Run from the repository root. Used by the server-smoke CI job
# (.github/workflows/ci.yml), once row-encoded and once --columnar.

set -euo pipefail

SERVER="${SES_SERVER:-./build/examples/ses_server}"
LOADGEN="${SES_LOADGEN:-./build/examples/ses_loadgen}"
CLI="${SES_CLI:-./build/examples/ses_cli}"
CLIENTS="${1:-8}"
EVENTS="${2:-2000}"
EXTRA=(${SES_LOADGEN_FLAGS:-})
SCHEMA="ID INT, L STRING, V DOUBLE"

for bin in "$SERVER" "$LOADGEN" "$CLI"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found (build first, or set SES_SERVER/..)" >&2
    exit 2
  fi
done

workdir=$(mktemp -d)
server_pid=""

keep_evidence() {
  if [ -n "${SES_KEEP_DIR:-}" ]; then
    mkdir -p "$SES_KEEP_DIR"
    cp -r "$workdir"/. "$SES_KEEP_DIR"/
  fi
}

cleanup() {
  status=$?
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2> /dev/null; then
    kill -TERM "$server_pid" 2> /dev/null || true
    wait "$server_pid" 2> /dev/null || true
  fi
  if [ "$status" -ne 0 ]; then
    keep_evidence
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

# 1. Start the server on an ephemeral port and parse the port line it
#    prints on stdout. A sanitizer-instrumented server can be slow to come
#    up, hence the generous poll loop.
"$SERVER" --schema "$SCHEMA" --queue-capacity 16 \
  > "$workdir/server.out" 2> "$workdir/server.err" &
server_pid=$!

port=""
for _ in $(seq 1 200); do
  if ! kill -0 "$server_pid" 2> /dev/null; then
    echo "error: ses_server exited during startup" >&2
    cat "$workdir/server.err" >&2
    exit 1
  fi
  port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$workdir/server.out")
  if [ -n "$port" ]; then break; fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "error: ses_server never printed its port line" >&2
  cat "$workdir/server.err" >&2
  exit 1
fi

echo "server_smoke: port=$port clients=$CLIENTS events=$EVENTS" \
     "flags='${SES_LOADGEN_FLAGS:-}'"

# 2. Drive it: N concurrent clients, small batches so the queue-capacity
#    16 server answers some Busy frames under load, dumping each client's
#    stream + query + wire-delivered matches for the differential check.
mkdir -p "$workdir/dump"
"$LOADGEN" --port "$port" --clients "$CLIENTS" --events "$EVENTS" \
  --batch 128 --dump-dir "$workdir/dump" \
  "${EXTRA[@]+"${EXTRA[@]}"}" | tee "$workdir/loadgen.out"

# 3. Replay every dumped stream through ses_cli and diff. The loadgen
#    writes matches in SortMatches order with ids assigned by rank, which
#    is exactly what `ses_cli --format csv` prints for the same stream.
fail=0
for c in $(seq 0 $((CLIENTS - 1))); do
  base="$workdir/dump/client$c"
  "$CLI" --schema "$SCHEMA" --data "$base.csv" --query-file "$base.query" \
    --format csv > "$base.ref.csv"
  if ! diff -u "$base.ref.csv" "$base.matches.csv" > "$base.diff"; then
    echo "error: client $c wire matches diverged from ses_cli" >&2
    head -20 "$base.diff" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  exit 1
fi

# 4. Clean shutdown: SIGTERM, then require exit 0 so sanitizer reports
#    (including leaks found at exit) fail the run.
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "error: ses_server shutdown reported failure" >&2
  cat "$workdir/server.err" >&2
  exit 1
fi
server_pid=""

matches=$(awk 'END { print NR - 1 }' "$workdir"/dump/client0.matches.csv)
echo "server_smoke: OK ($CLIENTS client(s) x $EVENTS events," \
     "client0 delivered $matches match row(s), all diffs clean)"
