#!/usr/bin/env bash
# Doc-comment lint for the runtime's public headers.
#
# Fails (exit 1) if a public header under src/exec/, src/metrics/,
# src/plan/, src/engine/, src/catalog/, src/event/, src/storage/,
# src/bench/, or src/net/ declares a top-level class or struct that is not
# immediately preceded by a `///` doc comment. These
# are the headers an operator reads first (see docs/RUNTIME.md and
# EXPERIMENTS.md), so every public type must say what it is for.
#
# Heuristics, kept deliberately simple (grep/awk only):
#   * only column-0 `class X {` / `struct X {` declarations are checked
#     (nested types are indented, so they are exempt);
#   * pure forward declarations (`class X;`) are exempt;
#   * the preceding line must start with `///` (the tail of a doc block),
#     or be a one-line `template <...>` header whose own preceding line
#     starts with `///`.
#
# Usage: tools/check_doc_comments.sh  (from the repository root)

set -u

fail=0
shopt -s nullglob
for header in src/exec/*.h src/metrics/*.h src/plan/*.h src/engine/*.h \
              src/catalog/*.h src/bench/*.h src/event/*.h src/storage/*.h \
              src/net/*.h; do
  out=$(awk '
    /^(class|struct)[ \t]+[A-Za-z_]/ {
      # Skip pure forward declarations: "class X;" with no brace.
      if ($0 ~ /;[ \t]*$/ && $0 !~ /\{/) { prev2 = prev; prev = $0; next }
      documented = prev ~ /^\/\/\//
      if (prev ~ /^template/ && prev2 ~ /^\/\/\//) documented = 1
      if (!documented) {
        printf "%d: undocumented public type: %s\n", FNR, $0
      }
    }
    { prev2 = prev; prev = $0 }
  ' "$header")
  if [ -n "$out" ]; then
    while IFS= read -r line; do
      echo "$header:$line"
    done <<<"$out"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "error: public types in src/exec/, src/metrics/, src/plan/, src/engine/, src/catalog/, src/event/, src/storage/, src/bench/, and src/net/ need /// doc comments" >&2
  exit 1
fi
echo "doc-comment lint: OK"
