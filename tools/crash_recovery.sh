#!/usr/bin/env bash
# Crash-recovery differential harness for the checkpoint/restore subsystem
# (docs/RUNTIME.md checkpoint section, docs/SEMANTICS.md section 12).
#
# Proves the exact-resume contract end to end through the CLI: a run that
# is killed at a random event offset and restored from its newest on-disk
# checkpoint must print stdout byte-identical to a run that was never
# interrupted. The kill is a real process death (ses_cli --crash-after-
# events exits hard with code 137, no flush), and the harness chains TWO
# crashes — the restored run is killed again and restored again — so
# repeated recovery is covered, not just the first.
#
# Usage: tools/crash_recovery.sh [ENGINE] [THREADS] [SEED]
#   ENGINE   serial | partitioned | parallel | brute-force (default serial)
#   THREADS  worker shards, parallel engine only (default 0 = engine pick)
#   SEED     randomizes the two kill offsets; logged for reproduction
#            (default: derived from $RANDOM)
#
# Environment:
#   SES_CLI          path to the ses_cli binary
#                    (default ./build/examples/ses_cli)
#   SES_EXTRA_FLAGS  extra CLI flags appended to every run, e.g.
#                    "--rebalance" or "--lateness 5"
#
# Exit status: 0 when every restored run reproduced the reference output,
# non-zero otherwise. Run from the repository root. Used by the
# crash-recovery CI job (.github/workflows/ci.yml), which runs it across
# engines x threads under ASan+UBSan.

set -euo pipefail

CLI="${SES_CLI:-./build/examples/ses_cli}"
ENGINE="${1:-serial}"
THREADS="${2:-0}"
SEED="${3:-$((RANDOM + 1))}"
EXTRA=(${SES_EXTRA_FLAGS:-})

if [ ! -x "$CLI" ]; then
  echo "error: ses_cli not found at $CLI (set SES_CLI or build first)" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Deterministic keyed stream: 50 rounds of the chemotherapy-style
# C P P P D B episode across 8 interleaved keys = 2400 events, dense in
# matches so buffered state is non-trivial at every kill offset.
csv="$workdir/events.csv"
{
  echo "T,ID,L"
  awk 'BEGIN {
    t = 0
    split("C P P P D B", seq, " ")
    for (rep = 0; rep < 50; ++rep)
      for (key = 1; key <= 8; ++key)
        for (i = 1; i <= 6; ++i) { ++t; printf "%d,%d,%s\n", t, key, seq[i] }
  }'
} > "$csv"
TOTAL=2400

# The paper's episode pattern with a complete equality graph on ID, so
# every engine (partition-pure ones included) accepts it. Brute-force
# rejects group variables; give it the group-free variant.
if [ "$ENGINE" = "brute-force" ]; then
  QUERY="PATTERN {c, d} -> {b} WHERE c.L = 'C' AND d.L = 'D' AND b.L = 'B'
         AND c.ID = d.ID AND c.ID = b.ID AND d.ID = b.ID WITHIN 30"
else
  QUERY="PATTERN {c, p+, d} -> {b} WHERE c.L = 'C' AND d.L = 'D'
         AND p.L = 'P' AND b.L = 'B' AND c.ID = p.ID AND c.ID = d.ID
         AND c.ID = b.ID AND p.ID = d.ID AND p.ID = b.ID AND d.ID = b.ID
         WITHIN 30"
fi

# Two kill offsets from the seed: the first anywhere in the stream, the
# second within what typically remains after the first restore.
read -r KILL1 KILL2 <<EOF
$(awk -v seed="$SEED" -v total="$TOTAL" 'BEGIN {
  srand(seed)
  k1 = 1 + int(rand() * (total - 2))
  k2 = 1 + int(rand() * (total / 2))
  printf "%d %d\n", k1, k2
}')
EOF

common=(--schema "ID INT, L STRING" --data "$csv" --query "$QUERY"
        --engine "$ENGINE")
if [ "$ENGINE" = "parallel" ] && [ "$THREADS" -gt 0 ]; then
  common+=(--threads "$THREADS")
fi
common+=("${EXTRA[@]+"${EXTRA[@]}"}")
ckpt=(--checkpoint-dir "$workdir/ckpt" --checkpoint-interval 100)

echo "crash_recovery: engine=$ENGINE threads=$THREADS seed=$SEED" \
     "kill1=$KILL1 kill2=$KILL2"

# 1. Uninterrupted reference.
"$CLI" "${common[@]}" > "$workdir/ref.txt"

# 2. First life: killed mid-stream. Expect the hard-exit code.
set +e
"$CLI" "${common[@]}" "${ckpt[@]}" --crash-after-events "$KILL1" \
  > /dev/null 2> "$workdir/crash1.log"
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "error: crash run 1 exited $status, wanted 137" >&2
  cat "$workdir/crash1.log" >&2
  exit 1
fi

# 3. Second life: restored, then killed again. When fewer than KILL2
#    events remain it simply finishes — then its output already counts.
set +e
"$CLI" "${common[@]}" "${ckpt[@]}" --restore --crash-after-events "$KILL2" \
  > "$workdir/out.txt" 2> "$workdir/crash2.log"
status=$?
set -e
if [ "$status" -eq 137 ]; then
  # 4. Third life: restored once more, runs to completion.
  "$CLI" "${common[@]}" "${ckpt[@]}" --restore > "$workdir/out.txt" \
    2> "$workdir/restore.log"
elif [ "$status" -ne 0 ]; then
  echo "error: restore run exited $status" >&2
  cat "$workdir/crash2.log" >&2
  exit 1
fi

if ! diff -u "$workdir/ref.txt" "$workdir/out.txt"; then
  echo "error: restored output diverged from the uninterrupted run" \
       "(engine=$ENGINE threads=$THREADS seed=$SEED" \
       "kill1=$KILL1 kill2=$KILL2)" >&2
  # Keep the evidence for the CI artifact upload.
  if [ -n "${SES_KEEP_DIR:-}" ]; then
    mkdir -p "$SES_KEEP_DIR"
    cp -r "$workdir"/. "$SES_KEEP_DIR"/
  fi
  exit 1
fi

echo "crash_recovery: OK ($(wc -l < "$workdir/ref.txt") output lines" \
     "reproduced across two kills)"
