// bench_compare: gates CI on benchmark regressions.
//
//   bench_compare [options] <baseline.json> <candidate.json>
//
// Both files use the BENCH_*.json schema written by the bench/ binaries'
// --json mode (see src/bench/harness.h). Prints a markdown delta table and
// exits 0 when no metric regressed, 1 on any regression (including a
// baseline case missing from the candidate, or an exact counter drifting),
// 2 on usage or file/schema errors. Thresholds are candidate/baseline
// ratios; see src/bench/compare.h for the semantics and defaults.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/compare.h"
#include "bench/json.h"

namespace {

using ses::Result;
using ses::bench::CompareBenchReports;
using ses::bench::CompareReport;
using ses::bench::CompareThresholds;
using ses::bench::Json;

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <baseline.json> <candidate.json>\n"
      "  --wall-ratio R        regress when mean wall time ratio > R "
      "(default 1.50)\n"
      "  --throughput-ratio R  regress when events/s ratio < R "
      "(default 0.67)\n"
      "  --latency-ratio R     regress when p99 latency ratio > R "
      "(default 2.00)\n"
      "exit status: 0 no regressions, 1 regressions, 2 usage/file error\n",
      argv0);
}

Result<Json> LoadJson(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ses::Status::IoError(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::Parse(buffer.str());
}

double ParseRatio(const char* flag, const char* value) {
  char* end = nullptr;
  double ratio = std::strtod(value, &end);
  if (end == value || *end != '\0' || ratio <= 0) {
    std::fprintf(stderr, "%s: not a positive number: %s\n", flag, value);
    std::exit(2);
  }
  return ratio;
}

}  // namespace

int main(int argc, char** argv) {
  CompareThresholds thresholds;
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wall-ratio") == 0 && i + 1 < argc) {
      thresholds.wall_ratio = ParseRatio(argv[i], argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--throughput-ratio") == 0 &&
               i + 1 < argc) {
      thresholds.throughput_ratio = ParseRatio(argv[i], argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--latency-ratio") == 0 && i + 1 < argc) {
      thresholds.latency_ratio = ParseRatio(argv[i], argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) {
    Usage(argv[0]);
    return 2;
  }

  Result<Json> baseline = LoadJson(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline %s: %s\n", baseline_path,
                 baseline.status().ToString().c_str());
    return 2;
  }
  Result<Json> candidate = LoadJson(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "candidate %s: %s\n", candidate_path,
                 candidate.status().ToString().c_str());
    return 2;
  }

  Result<CompareReport> report =
      CompareBenchReports(*baseline, *candidate, thresholds);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::fputs(report->ToMarkdown().c_str(), stdout);
  return report->ok() ? 0 : 1;
}
